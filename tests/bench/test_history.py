"""The perf trajectory: HISTORY.jsonl round-trips, trend, and the CI gate.

``check_history`` is the timing-free part of the regression plane, so it
is tested with crafted entries: the baseline is the *median* of a window
of prior runs (outlier-resistant in both directions), and a flagged entry
is attributed to the phase whose share of the run grew.
"""

import json

import pytest

from repro import cli
from repro.bench import (
    HISTORY_SCHEMA,
    BenchResult,
    append_history,
    build_artifact,
    check_history,
    history_entry,
    load_history,
    render_history_lines,
    render_trend_lines,
)


def _artifact(throughput, phases=None, sha="aaaaaaaaaaaa", created="2026-08-08"):
    return build_artifact(
        [
            BenchResult(
                name="epoch_loop",
                wall_seconds=1.0,
                throughput=throughput,
                unit="node-epochs/s",
                phases=phases or {},
            )
        ],
        profile="smoke",
        seed=5,
        created=created,
        provenance={"git_sha": sha, "git_dirty": False, "created": created},
    )


def _entry(throughput, phases=None, sha="aaaaaaaaaaaa"):
    return history_entry(_artifact(throughput, phases=phases, sha=sha))


# --- round trips ----------------------------------------------------------


def test_history_entry_condenses_artifact():
    entry = _entry(100.0, phases={"dropping": 0.1, "selection": 0.9})
    assert entry["schema"] == HISTORY_SCHEMA
    assert entry["git_sha"] == "aaaaaaaaaaaa"
    assert entry["git_dirty"] is False
    case = entry["results"]["epoch_loop"]
    assert case["throughput"] == 100.0
    assert case["phases"] == {"dropping": 0.1, "selection": 0.9}


def test_append_and_load_round_trip(tmp_path):
    path = tmp_path / "sub" / "HISTORY.jsonl"  # parent dir is created
    first = _entry(100.0)
    second = _entry(110.0, sha="bbbbbbbbbbbb")
    append_history(str(path), first)
    append_history(str(path), second)
    assert load_history(str(path)) == [first, second]
    # One compact JSON object per line — the append-only JSONL contract.
    lines = path.read_text().splitlines()
    assert len(lines) == 2
    assert json.loads(lines[0]) == first


def test_load_missing_history_is_empty(tmp_path):
    assert load_history(str(tmp_path / "absent.jsonl")) == []


def test_load_rejects_corrupt_line_with_lineno(tmp_path):
    path = tmp_path / "HISTORY.jsonl"
    append_history(str(path), _entry(100.0))
    with path.open("a") as sink:
        sink.write("not json\n")
    with pytest.raises(ValueError, match=":2"):
        load_history(str(path))


def test_append_validates_schema(tmp_path):
    with pytest.raises(ValueError, match="schema"):
        append_history(str(tmp_path / "h.jsonl"), {"schema": "nope"})


# --- rendering ------------------------------------------------------------


def test_render_history_lines_lists_entries():
    lines = render_history_lines([_entry(100.0), _entry(110.0, sha="bbbbbbbbbbbb")])
    assert len(lines) == 3  # header + 2 entries
    assert "epoch_loop" in lines[0]
    assert "aaaaaaa" in lines[1] and "bbbbbbb" in lines[2]
    assert render_history_lines([]) == ["history: no entries"]


def test_render_trend_lines_show_ratio():
    lines = render_trend_lines([_entry(100.0), _entry(50.0)])
    assert len(lines) == 1
    assert "last/first=0.50" in lines[0]


# --- the gate -------------------------------------------------------------


def test_check_history_needs_two_entries():
    comparison, lines = check_history([_entry(100.0)])
    assert comparison is None
    assert "fewer than two entries" in lines[0]


def test_check_history_passes_on_stable_series():
    entries = [_entry(100.0), _entry(102.0), _entry(98.0), _entry(101.0)]
    comparison, _ = check_history(entries, threshold=0.30)
    assert comparison is not None and comparison.ok


def test_check_history_flags_regression_and_attributes_phase():
    healthy_phases = {"dropping": 0.05, "selection": 0.95}
    entries = [
        _entry(100.0, phases=healthy_phases),
        _entry(101.0, phases=healthy_phases),
        _entry(99.0, phases=healthy_phases),
        # Newest: throughput halved, dropping went from 5% to 68%.
        _entry(50.0, phases={"dropping": 1.05, "selection": 0.95}),
    ]
    comparison, lines = check_history(entries, threshold=0.30)
    assert comparison is not None and not comparison.ok
    row = comparison.regressions[0]
    assert row.name == "epoch_loop"
    assert row.attributed_phases == ("dropping",)
    assert any("dropping" in line for line in lines)


def test_check_history_baseline_is_median_of_window():
    # One anomalously fast historical run must not fail a normal newest run.
    entries = [
        _entry(100.0),
        _entry(1000.0),  # outlier
        _entry(101.0),
        _entry(99.0),
        _entry(100.0),  # newest: in line with the median
    ]
    comparison, _ = check_history(entries, threshold=0.30, window=4)
    assert comparison is not None and comparison.ok
    # A mean-based baseline would have been ~325 and flagged this.


# --- the CLI verbs --------------------------------------------------------


def _seed_history(tmp_path, entries):
    path = tmp_path / "HISTORY.jsonl"
    for entry in entries:
        append_history(str(path), entry)
    return str(path)


def test_cli_bench_history_and_trend(tmp_path, capsys):
    path = _seed_history(tmp_path, [_entry(100.0), _entry(105.0)])
    assert cli.main(["bench", "history", "--history", path]) == 0
    out = capsys.readouterr().out
    assert "epoch_loop" in out and "aaaaaaa" in out
    assert cli.main(["bench", "trend", "--history", path]) == 0
    assert "last/first" in capsys.readouterr().out


def test_cli_trend_check_history_exit_4_names_case_and_phase(tmp_path, capsys):
    path = _seed_history(
        tmp_path,
        [
            _entry(100.0, phases={"dropping": 0.05, "selection": 0.95}),
            _entry(100.0, phases={"dropping": 0.05, "selection": 0.95}),
            _entry(40.0, phases={"dropping": 1.5, "selection": 0.95}),
        ],
    )
    assert cli.main(["bench", "trend", "--history", path, "--check-history"]) == 4
    captured = capsys.readouterr()
    assert "perf regression: epoch_loop [dropping]" in captured.err


def test_cli_trend_check_history_passes_clean(tmp_path, capsys):
    path = _seed_history(tmp_path, [_entry(100.0), _entry(101.0)])
    assert cli.main(["bench", "trend", "--history", path, "--check-history"]) == 0
    capsys.readouterr()


def test_cli_history_rejects_extra_names(tmp_path, capsys):
    path = _seed_history(tmp_path, [_entry(100.0)])
    assert cli.main(["bench", "history", "extra", "--history", path]) == 2
    capsys.readouterr()


def test_committed_history_is_valid_and_nonempty():
    entries = load_history("benchmarks/baselines/HISTORY.jsonl")
    assert entries, "committed HISTORY.jsonl must carry at least one entry"
    for entry in entries:
        assert entry["schema"] == HISTORY_SCHEMA
        assert "epoch_loop" in entry["results"]
