"""Failure-injection tests: partitions, mass failures, lossy operations.

The paper's resilience claims (Sec. 4.1: "a large fraction of nodes may
depart the system at the same time due to a network failure") exercised at
the protocol level.
"""

import random

import pytest

from repro.core.config import SoupConfig
from repro.dht.bootstrap import BootstrapRegistry
from repro.dht.pastry import DhtError, PastryOverlay
from repro.dht.storage import DirectoryEntry
from repro.network.events import EventLoop
from repro.network.simnet import SimNetwork
from repro.node.middleware import SoupNode
from repro.node.profile import DataItem


class World:
    def __init__(self, n=12, seed=3):
        self.loop = EventLoop()
        self.network = SimNetwork(self.loop)
        self.overlay = PastryOverlay()
        self.registry = BootstrapRegistry()
        self.nodes = {}
        self.users = []
        for i in range(n):
            node = SoupNode(
                name=f"n{i}", network=self.network, overlay=self.overlay,
                registry=self.registry, peer_resolver=self.nodes.get,
                config=SoupConfig(), seed=seed + i, key_bits=256,
            )
            self.nodes[node.node_id] = node
            self.users.append(node)
        self.users[0].join()
        self.users[0].make_bootstrap_node()
        for node in self.users[1:]:
            node.join()
        for a in self.users:
            for b in self.users:
                if a is not b:
                    a.contact(b.node_id)


@pytest.fixture()
def world():
    return World()


class TestDhtMassFailure:
    def test_directory_survives_coordinated_failures(self):
        rng = random.Random(0)
        overlay = PastryOverlay()
        ids = []
        for i in range(120):
            node_id = rng.getrandbits(64)
            overlay.join(node_id, bootstrap_id=ids[0] if ids else None)
            ids.append(node_id)
        keys = [rng.getrandbits(64) for _ in range(40)]
        for key in keys:
            overlay.publish(ids[0], key, DirectoryEntry(soup_id=key, name=str(key)))

        # A third of the ring fails abruptly (no handover).
        victims = rng.sample(ids, 40)
        for victim in victims:
            overlay.fail(victim)
        alive = [i for i in ids if i not in set(victims)]

        # Routing still converges from every survivor.
        for _ in range(30):
            route = overlay.route(rng.choice(alive), rng.getrandbits(64))
            assert route.responsible in alive

        # Lost entries are restored by republishing (what owners do on
        # their next round).
        recovered = 0
        for key in keys:
            overlay.publish(alive[0], key, DirectoryEntry(soup_id=key, name=str(key)))
            entry, _ = overlay.lookup(alive[-1], key)
            recovered += entry is not None
        assert recovered == len(keys)


class TestPartition:
    def test_data_survives_half_the_network_going_dark(self, world):
        owner = world.users[1]
        owner.post_item(DataItem.text(3000, created_at=world.loop.now))
        accepted = owner.run_selection_round()
        world.loop.run_until(world.loop.now + 5)
        assert len(accepted) >= 3

        # Half the non-mirror population drops (network failure).
        others = [
            u for u in world.users
            if u is not owner and u.node_id not in set(accepted)
        ]
        for victim in others[: len(others) // 2]:
            victim.go_offline()

        owner.go_offline()
        reader = next(u for u in world.users if u.online and u is not owner)
        assert reader.request_profile(owner.node_id)

    def test_reselection_after_most_mirrors_fail(self, world):
        """The repair loop: friends observe the dead mirrors failing, report
        the failures, and the owner's next round recruits live mirrors."""
        world = World(n=26)
        owner = world.users[2]
        reader = world.users[3]
        reader.befriend(owner.node_id)
        accepted = owner.run_selection_round()
        assert accepted
        for mirror_id in accepted:
            if mirror_id != reader.node_id:
                world.nodes[mirror_id].go_offline()

        # The feedback loop (Sec. 4.4): observe -> exchange -> re-rank.
        reader.request_profile(owner.node_id)
        reader.exchange_experience_sets()
        replacement = owner.run_selection_round()
        online_replacements = [
            m for m in replacement if world.nodes[m].online
        ]
        assert online_replacements


class TestLossyOperations:
    def test_message_to_fully_dark_user_fails_gracefully(self, world):
        sender = world.users[1]
        target = world.users[3]
        target.go_offline()
        # Target has no mirrors at all: delivery must fail, not crash.
        assert target.mirror_manager.announced_mirrors == []
        assert not sender.send_message(target.node_id, "anyone home?")

    def test_profile_request_for_unknown_user(self, world):
        reader = world.users[1]
        assert not reader.request_profile(0xDEAD_BEEF_0000_0001)

    def test_mobile_with_dead_gateway_and_empty_registry(self):
        loop = EventLoop()
        network = SimNetwork(loop)
        overlay = PastryOverlay()
        registry = BootstrapRegistry()
        nodes = {}

        def make(name, seed, mobile=False):
            node = SoupNode(
                name=name, network=network, overlay=overlay, registry=registry,
                peer_resolver=nodes.get, config=SoupConfig(), seed=seed,
                is_mobile=mobile, key_bits=256,
            )
            nodes[node.node_id] = node
            return node

        boot = make("boot", 1)
        boot.join()
        boot.make_bootstrap_node()
        phone = make("phone", 2, mobile=True)
        phone.join(bootstrap_id=boot.node_id)

        boot.go_offline()
        registry.unregister(boot.node_id)
        # No gateway candidates remain: operations raise cleanly.
        with pytest.raises(DhtError):
            phone.lookup_user(boot.node_id)
