"""End-to-end integration: middleware + DHT + network + crypto together.

Exercises the complete user story of the paper: join, befriend, encrypt and
replicate a profile, go offline, have data served by mirrors, receive
buffered messages on return — across a network that includes mobile nodes.
"""

import pytest

from repro.core.config import SoupConfig
from repro.dht.bootstrap import BootstrapRegistry
from repro.dht.pastry import PastryOverlay
from repro.network.events import EventLoop
from repro.network.simnet import SimNetwork
from repro.node.middleware import SoupNode
from repro.node.profile import DataItem


@pytest.fixture()
def world():
    loop = EventLoop()
    network = SimNetwork(loop)
    overlay = PastryOverlay()
    registry = BootstrapRegistry()
    nodes = {}

    def make(name, mobile=False, seed=0):
        node = SoupNode(
            name=name,
            network=network,
            overlay=overlay,
            registry=registry,
            peer_resolver=nodes.get,
            config=SoupConfig(),
            seed=seed,
            is_mobile=mobile,
            key_bits=256,
        )
        nodes[node.node_id] = node
        return node

    return loop, network, nodes, make


def test_full_user_story(world):
    loop, network, nodes, make = world
    alice = make("alice", seed=1)
    alice.join()
    alice.make_bootstrap_node()

    others = [make(f"user{i}", seed=10 + i) for i in range(8)]
    for node in others:
        node.join(bootstrap_id=alice.node_id)
    bob = others[0]
    mallory_free_world = others[1:]

    # Everyone meets everyone (small deployment).
    for node in [alice] + others:
        for other in [alice] + others:
            if node is not other:
                node.contact(other.node_id)

    # Alice and Bob become friends: keys exchanged.
    assert alice.befriend(bob.node_id)
    assert alice.security.can_decrypt_from(bob.node_id)

    # Alice posts data and replicates it.
    alice.post_item(DataItem.text(4000, created_at=loop.now))
    alice.post_item(DataItem.photo(60_000, created_at=loop.now))
    accepted = alice.run_selection_round()
    assert accepted
    loop.run_until(loop.now + 10)

    # The replica is ciphertext at the mirror: Bob (friend) can decrypt it,
    # the mirror itself cannot.
    ciphertext = alice.security.encrypt_replica(b"alice's profile bytes")
    assert bob.security.decrypt_from(alice.node_id, ciphertext) == b"alice's profile bytes"
    mirror = nodes[accepted[0]]
    from repro.crypto.abe import AbeError

    if not mirror.social.is_friend(alice.node_id):
        with pytest.raises(AbeError):
            mirror.security.decrypt_from(alice.node_id, ciphertext)

    # Alice goes offline; Bob still gets her data (from the mirrors).
    alice.go_offline()
    assert bob.request_profile(alice.node_id)

    # Bob messages offline Alice; she finds it on return.
    assert bob.send_message(alice.node_id, "welcome back!")
    loop.run_until(loop.now + 5)
    alice.go_online()
    loop.run_until(loop.now + 5)
    texts = [
        (o.payload or {}).get("text") for o in alice.applications.messages_received()
    ]
    assert "welcome back!" in texts


def test_mobile_user_story(world):
    loop, network, nodes, make = world
    gateway = make("gateway", seed=1)
    gateway.join()
    gateway.make_bootstrap_node()
    desktops = [make(f"d{i}", seed=20 + i) for i in range(5)]
    for node in desktops:
        node.join(bootstrap_id=gateway.node_id)
    phone = make("phone", mobile=True, seed=99)
    phone.join(bootstrap_id=gateway.node_id)

    for node in desktops + [gateway]:
        phone.contact(node.node_id)
        node.contact(phone.node_id)

    # The phone selects mirrors for its data (but never mirrors others).
    accepted = phone.run_selection_round()
    assert accepted
    assert all(not nodes[m].is_mobile for m in accepted)

    # Lookups work through the gateway relay.
    entry = phone.lookup_user(desktops[0].node_id)
    assert entry is not None

    # The phone's data survives it going offline.
    phone.post_item(DataItem.photo(80_000, created_at=loop.now))
    phone.run_selection_round()
    loop.run_until(loop.now + 10)
    phone.go_offline()
    assert desktops[0].request_profile(phone.node_id)


def test_mirror_churn_recovery(world):
    """When mirrors leave, the owner's next round replaces them."""
    loop, network, nodes, make = world
    boot = make("boot", seed=1)
    boot.join()
    boot.make_bootstrap_node()
    others = [make(f"n{i}", seed=30 + i) for i in range(10)]
    for node in others:
        node.join(bootstrap_id=boot.node_id)
    owner = others[0]
    for node in others[1:] + [boot]:
        owner.contact(node.node_id)

    accepted = owner.run_selection_round()
    assert accepted
    # Half the mirrors vanish.
    for mirror_id in accepted[: len(accepted) // 2]:
        nodes[mirror_id].go_offline()
    replacement = owner.run_selection_round()
    online_mirrors = [m for m in replacement if nodes[m].online]
    assert online_mirrors  # data is still hosted somewhere reachable
