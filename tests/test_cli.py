"""Tests for the experiment CLI."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


def test_table1(capsys):
    code, out = run_cli(capsys, "table1")
    assert code == 0
    assert "SOUP" in out
    assert "Diaspora" in out


def test_table3_full_scale(capsys):
    code, out = run_cli(capsys, "table3")
    assert code == 0
    assert "facebook" in out and "90269" in out
    assert "6.71" in out


def test_fig5_small(capsys):
    code, out = run_cli(
        capsys, "fig5", "--scale", "0.004", "--days", "3", "--dataset", "epinions"
    )
    assert code == 0
    assert "availability/day:" in out
    assert "replicas/day:" in out


def test_fig10_with_ties_flag(capsys):
    code, out = run_cli(
        capsys,
        "fig10",
        "--scale", "0.004",
        "--days", "3",
        "--fraction", "0.3",
        "--ties",
    )
    assert code == 0
    assert "slander fraction=0.3" in out


def test_fig11_reports_blacklist(capsys):
    code, out = run_cli(
        capsys, "fig11", "--scale", "0.004", "--days", "3", "--fraction", "0.3"
    )
    assert code == 0
    assert "blacklist entries:" in out


def test_fig15(capsys):
    code, out = run_cli(capsys, "fig15", "--rate", "5", "--duration", "30")
    assert code == 0
    assert "mean=" in out and "timeouts=" in out


def test_deploy_small(capsys):
    code, out = run_cli(
        capsys, "deploy", "--desktop", "8", "--mobile", "1",
        "--duration", "120", "--rounds", "3",
    )
    assert code == 0
    assert "users=9" in out
    assert "availability=" in out


def test_fig6_snapshots(capsys):
    code, out = run_cli(
        capsys, "fig6", "--scale", "0.004", "--days", "3", "--dataset", "epinions"
    )
    assert code == 0
    assert "day   1:" in out or "day 1" in out
    assert "top-half replica share" in out


def test_fig7_cohorts(capsys):
    code, out = run_cli(capsys, "fig7", "--scale", "0.004", "--days", "2")
    assert code == 0
    for cohort in ("top_online", "bottom_online", "top_friends", "bottom_friends"):
        assert cohort in out


def test_fig8_altruism(capsys):
    code, out = run_cli(
        capsys, "fig8", "--scale", "0.004", "--days", "3",
        "--fraction", "0.05", "--event-day", "1",
    )
    assert code == 0
    assert "altruism fraction=0.05" in out


def test_fig9_departure(capsys):
    code, out = run_cli(
        capsys, "fig9", "--scale", "0.004", "--days", "3",
        "--fraction", "0.05", "--event-day", "1",
    )
    assert code == 0
    assert "departure fraction=0.05" in out


def test_fig5_sparkline_present(capsys):
    code, out = run_cli(capsys, "fig5", "--scale", "0.004", "--days", "2")
    assert code == 0
    assert any(block in out for block in "▁▂▃▄▅▆▇█")


def test_fig5_json_export(capsys):
    import json

    code, out = run_cli(
        capsys, "fig5", "--scale", "0.004", "--days", "2", "--json"
    )
    assert code == 0
    payload = json.loads(out)
    assert payload["dataset"] == "facebook"
    assert len(payload["daily_availability"]) == 2
    assert 0.0 <= payload["steady_availability"] <= 1.0


def test_fig11_json_export(capsys):
    import json

    code, out = run_cli(
        capsys, "fig11", "--scale", "0.004", "--days", "2",
        "--fraction", "0.2", "--json",
    )
    assert code == 0
    payload = json.loads(out)
    assert payload["experiment"] == "flooding"
    assert payload["fraction"] == 0.2
    assert "blacklisted_owner_count" in payload


def test_sim_generic_entry_point(capsys):
    code, out = run_cli(capsys, "sim", "--scale", "0.004", "--days", "2")
    assert code == 0
    assert "availability/day:" in out


def test_sim_writes_valid_trace(capsys, tmp_path):
    from repro.obs import get_tracer, validate_trace_file

    trace = tmp_path / "trace.jsonl"
    code, out = run_cli(
        capsys, "sim", "--scale", "0.004", "--days", "2",
        "--trace", str(trace), "--check-invariants",
    )
    assert code == 0
    assert trace.exists()
    assert validate_trace_file(str(trace)) == []
    assert not get_tracer().enabled  # teardown restored the disabled tracer


def test_sim_trace_filter(capsys, tmp_path):
    import json

    trace = tmp_path / "trace.jsonl"
    code, _ = run_cli(
        capsys, "sim", "--scale", "0.004", "--days", "2",
        "--trace", str(trace), "--trace-filter", "mirror_selected",
    )
    assert code == 0
    events = {
        json.loads(line)["event"]
        for line in trace.read_text().splitlines()
    }
    assert events == {"mirror_selected"}


def test_trace_validate_ok(capsys, tmp_path):
    trace = tmp_path / "trace.jsonl"
    code, _ = run_cli(
        capsys, "sim", "--scale", "0.004", "--days", "2", "--trace", str(trace)
    )
    assert code == 0
    code, out = run_cli(capsys, "trace-validate", str(trace))
    assert code == 0
    assert "all valid" in out


def test_trace_validate_rejects_unknown_event(capsys, tmp_path):
    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"v": 1, "seq": 0, "event": "bogus_event"}\n')
    code, _ = run_cli(capsys, "trace-validate", str(bad))
    assert code == 1


class TestTraceCommands:
    @pytest.fixture(scope="class")
    def trace_path(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("trace") / "trace.jsonl.gz"
        code = main([
            "sim", "--scale", "0.004", "--days", "3", "--repair",
            "--faults", "drop_transfer:rate=0.5:from_epoch=6:until_epoch=40",
            "--trace", str(path),
        ])
        assert code == 0
        return str(path)

    def test_trace_validate_subcommand_reads_gzip(self, capsys, trace_path):
        code, out = run_cli(capsys, "trace", "validate", trace_path)
        assert code == 0
        assert "all valid" in out

    def test_trace_analyze_text_and_json(self, capsys, trace_path):
        import json

        code, out = run_cli(capsys, "trace", "analyze", trace_path)
        assert code == 0
        assert "unavailability attribution" in out
        assert "replica lifecycles" in out
        code, out = run_cli(capsys, "trace", "analyze", trace_path, "--json")
        assert code == 0
        payload = json.loads(out)
        assert payload["lifecycles"]
        assert payload["total_unavailable_epochs"] == sum(
            row["unavailable_epochs"] for row in payload["attribution"]
        )

    def test_trace_anomalies(self, capsys, trace_path):
        import json

        code, out = run_cli(
            capsys, "trace", "anomalies", trace_path, "--json",
            "--churn-storm-drops", "5",
        )
        assert code == 0
        findings = json.loads(out)
        assert any(f["rule"] == "churn_storm" for f in findings)

    def test_trace_timeline(self, capsys, trace_path):
        import json

        code, out = run_cli(capsys, "trace", "analyze", trace_path, "--json")
        owner = json.loads(out)["attribution"][0]["owner"]
        code, out = run_cli(capsys, "trace", "timeline", trace_path, str(owner))
        assert code == 0
        assert f"owner {owner}:" in out
        assert "unavailable" in out


def test_metrics_view(capsys):
    code, out = run_cli(
        capsys, "metrics", "--scale", "0.004", "--days", "2", "--repair"
    )
    assert code == 0
    assert "engine.replicas.placed" in out
    assert "engine.selection.churn" in out
    assert "reliability summary:" in out
    assert "circuit_transitions_total" in out


def test_metrics_json(capsys):
    import json

    code, out = run_cli(
        capsys, "metrics", "--scale", "0.004", "--days", "2", "--json"
    )
    assert code == 0
    payload = json.loads(out)
    assert "engine.selection.rounds" in payload["metrics"]
    assert "availability_steady" in payload["summary"]


def test_profile_flag_prints_breakdown(capsys):
    code = main(["sim", "--scale", "0.004", "--days", "2", "--profile"])
    captured = capsys.readouterr()
    assert code == 0
    assert "engine.epoch" in captured.err
    assert "share" in captured.err
    from repro.obs.profiling import PROFILER

    assert not PROFILER.enabled  # teardown disabled it


class TestSweepCommand:
    SWEEP_ARGS = (
        "sweep",
        "--base", "scale=0.004", "--base", "n_days=2",
        "--set", "altruist_fraction=0.0,0.02",
        "--seeds", "3",
        "--jobs", "1",
    )

    def test_sweep_runs_and_aggregates(self, capsys, tmp_path):
        run_dir = tmp_path / "run"
        code, out = run_cli(capsys, *self.SWEEP_ARGS, "--out", str(run_dir))
        assert code == 0
        assert (run_dir / "manifest.json").exists()
        assert len(list((run_dir / "tasks").glob("*.json"))) == 2
        assert "altruist_fraction=0.0" in out
        assert "altruist_fraction=0.02" in out
        assert "availability_steady" in out

    def test_sweep_resume_skips_cached(self, capsys, tmp_path):
        run_dir = tmp_path / "run"
        run_cli(capsys, *self.SWEEP_ARGS, "--out", str(run_dir))
        code = main([*self.SWEEP_ARGS, "--out", str(run_dir)])
        captured = capsys.readouterr()
        assert code == 0
        assert "2 cached" in captured.err

    def test_sweep_status_exit_codes(self, capsys, tmp_path):
        run_dir = tmp_path / "run"
        run_cli(capsys, *self.SWEEP_ARGS, "--out", str(run_dir), "--limit", "1")
        code, out = run_cli(capsys, "sweep", "--out", str(run_dir), "--status")
        assert code == 3
        assert "1/2 tasks complete" in out
        run_cli(capsys, *self.SWEEP_ARGS, "--out", str(run_dir))
        code, out = run_cli(capsys, "sweep", "--out", str(run_dir), "--status")
        assert code == 0
        assert "2/2 tasks complete" in out

    def test_sweep_json_output(self, capsys, tmp_path):
        import json

        code, out = run_cli(
            capsys, *self.SWEEP_ARGS, "--out", str(tmp_path / "run"), "--json"
        )
        assert code == 0
        payload = json.loads(out)
        assert [cell["overrides"]["altruist_fraction"] for cell in payload] == [
            0.0,
            0.02,
        ]
        assert all("availability_steady" in cell["stats"] for cell in payload)

    def test_sweep_spec_file(self, capsys, tmp_path):
        spec = tmp_path / "sweep.toml"
        spec.write_text(
            "seeds = [3]\n"
            "[base]\n"
            "scale = 0.004\n"
            "n_days = 2\n"
            "[grid]\n"
            'dataset = ["epinions"]\n'
        )
        code, out = run_cli(
            capsys, "sweep", str(spec), "--out", str(tmp_path / "run"), "--jobs", "1"
        )
        assert code == 0
        assert "dataset=epinions" in out

    def test_sweep_writes_telemetry(self, capsys, tmp_path):
        run_dir = tmp_path / "run"
        run_cli(capsys, *self.SWEEP_ARGS, "--out", str(run_dir))
        assert (run_dir / "telemetry" / "heartbeat.json").exists()
        code, _ = run_cli(
            capsys, "trace", "validate",
            str(run_dir / "telemetry" / "events.jsonl"),
        )
        assert code == 0

    def test_sweep_status_watch_exits_when_complete(self, capsys, tmp_path):
        run_dir = tmp_path / "run"
        run_cli(capsys, *self.SWEEP_ARGS, "--out", str(run_dir))
        code, out = run_cli(
            capsys, "sweep", "--out", str(run_dir), "--status", "--watch",
            "--interval", "0.1",
        )
        assert code == 0
        assert "2/2 tasks complete" in out

    def test_sweep_status_watch_surfaces_failures(self, capsys, tmp_path, monkeypatch):
        from repro.runtime import executor as executor_module

        real = executor_module.execute_task

        def flaky(payload):
            if payload["overrides"].get("altruist_fraction") == 0.02:
                raise RuntimeError("boom")
            return real(payload)

        monkeypatch.setattr(executor_module, "execute_task", flaky)
        run_dir = tmp_path / "run"
        main([*self.SWEEP_ARGS, "--out", str(run_dir)])
        capsys.readouterr()
        code, out = run_cli(
            capsys, "sweep", "--out", str(run_dir), "--status", "--watch",
            "--interval", "0.1",
        )
        assert code == 1
        assert "failed" in out and "boom" in out

    def test_sweep_rejects_bad_override(self, capsys, tmp_path):
        code = main(
            ["sweep", "--base", "scale=-1", "--out", str(tmp_path / "run")]
        )
        captured = capsys.readouterr()
        assert code != 0
        assert "scale" in captured.err


class TestCompareCommand:
    COMPARE_ARGS = (
        "compare",
        "--base", "scale=0.004", "--base", "n_days=2",
        "--seeds", "3",
        "--jobs", "1",
    )

    def test_compare_runs_all_architectures_one_table(self, capsys, tmp_path):
        import json

        run_dir = tmp_path / "run"
        code, out = run_cli(capsys, *self.COMPARE_ARGS, "--out", str(run_dir))
        assert code == 0
        # One table row per architecture, plus the acceptance metrics.
        for arch in ("soup", "superpeer", "social_dht", "cache"):
            assert arch in out
        for column in ("avail", "lookup_hops", "control_msgs", "storage_gini"):
            assert column in out
        payload = json.loads((run_dir / "compare.json").read_text())
        assert payload["schema"] == "soup-compare/v1"
        archs = {cell["architecture"] for cell in payload["cells"]}
        assert archs == {"soup", "superpeer", "social_dht", "cache"}
        for cell in payload["cells"]:
            assert "arch.dht.mean_lookup_hops" in cell["stats"]
            assert "arch.storage.gini" in cell["stats"]

    def test_compare_subset_and_resume(self, capsys, tmp_path):
        run_dir = tmp_path / "run"
        code, _ = run_cli(
            capsys, *self.COMPARE_ARGS, "--archs", "soup,cache",
            "--out", str(run_dir),
        )
        assert code == 0
        code = main([
            *self.COMPARE_ARGS, "--archs", "soup,cache", "--out", str(run_dir),
        ])
        captured = capsys.readouterr()
        assert code == 0
        assert "2 cached" in captured.err

    def test_compare_rejects_unknown_architecture(self, capsys, tmp_path):
        code, _ = run_cli(
            capsys, "compare", "--archs", "peerson", "--out", str(tmp_path / "r"),
        )
        assert code == 2

    def test_sim_architecture_flag_prints_arch_metrics(self, capsys):
        code, out = run_cli(
            capsys, "sim", "--dataset", "epinions", "--scale", "0.004",
            "--days", "2", "--seed", "3", "--architecture", "cache",
            "--measure-dht",
        )
        assert code == 0
        assert "arch.cache:" in out and "hit_rate=" in out
        assert "arch.dht:" in out and "arch.storage:" in out

    def test_deploy_architecture_flag_prints_arch_metrics(self, capsys):
        code, out = run_cli(
            capsys, "deploy", "--desktop", "8", "--mobile", "2",
            "--duration", "300", "--rounds", "4",
            "--architecture", "superpeer",
        )
        assert code == 0
        assert "arch.selection:" in out and "superpeer_count=" in out


def test_parser_rejects_unknown_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["does-not-exist"])


def test_parser_rejects_bad_dataset():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["fig5", "--dataset", "myspace"])
