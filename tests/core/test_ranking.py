"""Tests for bootstrap and regular ranking modes."""

import random

import pytest

from repro.core.config import SoupConfig
from repro.core.experience import ExperienceReport
from repro.core.knowledge import KnowledgeBase
from repro.core.ranking import BootstrapRanker, Recommendation, RegularRanker


@pytest.fixture()
def config():
    return SoupConfig()


class TestBootstrapRanker:
    def test_recommendations_ranked_by_quality(self, config):
        ranker = BootstrapRanker(config)
        ranker.add_recommendation(Recommendation(1, mirror=10, quality=0.9))
        ranker.add_recommendation(Recommendation(1, mirror=11, quality=0.2))
        ranking = ranker.ranking()
        assert [m for m, _ in ranking] == [10, 11]

    def test_quality_discounted(self, config):
        ranker = BootstrapRanker(config)
        ranker.add_recommendation(Recommendation(1, mirror=10, quality=1.0))
        ((_, rank),) = ranker.ranking()
        assert rank == pytest.approx(BootstrapRanker.TRUST_DISCOUNT)

    def test_unknown_quality_gets_prior(self, config):
        ranker = BootstrapRanker(config)
        ranker.add_recommendation(Recommendation(1, mirror=10, quality=None))
        ((_, rank),) = ranker.ranking()
        assert rank == pytest.approx(
            BootstrapRanker.TRUST_DISCOUNT * config.bootstrap_prior
        )

    def test_multiple_recommendations_averaged(self, config):
        ranker = BootstrapRanker(config)
        ranker.add_recommendations(
            [
                Recommendation(1, mirror=10, quality=1.0),
                Recommendation(2, mirror=10, quality=0.5),
            ]
        )
        ((_, rank),) = ranker.ranking()
        assert rank == pytest.approx(BootstrapRanker.TRUST_DISCOUNT * 0.75)
        assert ranker.recommendation_count == 2

    def test_quality_clamped(self, config):
        ranker = BootstrapRanker(config)
        ranker.add_recommendation(Recommendation(1, mirror=10, quality=7.0))
        ((_, rank),) = ranker.ranking()
        assert rank <= 1.0

    def test_fallback_ranking_uses_contacts(self, config):
        ranker = BootstrapRanker(config)
        ranking = ranker.fallback_ranking([1, 2, 3], random.Random(0))
        assert {m for m, _ in ranking} == {1, 2, 3}
        assert all(r == config.bootstrap_prior for _, r in ranking)


class TestRegularRankerAgedCounts:
    def test_experience_tracks_reported_availability(self, config):
        kb = KnowledgeBase(owner=0)
        ranker = RegularRanker(kb, config)
        for _ in range(12):
            ranker.ingest_reports(
                [
                    ExperienceReport(reporter=j, mirror=5, observations=3, availability=0.9)
                    for j in range(3)
                ]
            )
        # With many saturated reports, exp converges near 0.9 despite the
        # prior shrinkage.
        assert kb.experience_of(5) == pytest.approx(0.9, abs=0.07)

    def test_single_lucky_observation_does_not_dominate(self, config):
        kb = KnowledgeBase(owner=0)
        ranker = RegularRanker(kb, config)
        ranker.ingest_reports(
            [ExperienceReport(reporter=1, mirror=5, observations=1, availability=1.0)]
        )
        # Prior shrinkage keeps one success well below certainty.
        assert kb.experience_of(5) < 0.6

    def test_failure_reports_sink_experience(self, config):
        kb = KnowledgeBase(owner=0)
        ranker = RegularRanker(kb, config)
        for _ in range(10):
            ranker.ingest_reports(
                [ExperienceReport(reporter=1, mirror=5, observations=3, availability=1.0)]
            )
        high = kb.experience_of(5)
        for _ in range(10):
            ranker.ingest_reports(
                [ExperienceReport(reporter=1, mirror=5, observations=3, availability=0.0)]
            )
        assert kb.experience_of(5) < high / 2

    def test_reporter_influence_capped(self, config):
        kb = KnowledgeBase(owner=0)
        ranker = RegularRanker(kb, config)
        # One slanderer claiming many failed observations vs three honest
        # friends: the slanderer's weight is capped at o_max.
        ranker.ingest_reports(
            [ExperienceReport(reporter=666, mirror=5, observations=500, availability=0.0)]
            + [
                ExperienceReport(reporter=j, mirror=5, observations=3, availability=1.0)
                for j in range(3)
            ]
        )
        # Honest weight 9 vs capped malicious weight o_max=3.
        assert kb.experience_of(5) > 0.5

    def test_reports_about_owner_ignored(self, config):
        kb = KnowledgeBase(owner=0)
        ranker = RegularRanker(kb, config)
        ranker.ingest_reports(
            [ExperienceReport(reporter=1, mirror=0, observations=3, availability=1.0)]
        )
        assert 0 not in kb


class TestRegularRankerEq1Modes:
    @pytest.mark.parametrize("normalization", ["by_cap", "by_observations"])
    def test_eq1_modes_work_through_ranker(self, normalization):
        config = SoupConfig(experience_normalization=normalization)
        kb = KnowledgeBase(owner=0)
        ranker = RegularRanker(kb, config)
        ranker.ingest_reports(
            [
                ExperienceReport(
                    reporter=1, mirror=5, observations=config.o_max, availability=0.8
                )
            ]
        )
        assert kb.experience_of(5) == pytest.approx(0.75 * 0.8)

    def test_age_unreported_decays(self):
        config = SoupConfig(experience_normalization="by_cap")
        kb = KnowledgeBase(owner=0)
        kb.set_experience(5, 0.8)
        ranker = RegularRanker(kb, config)
        ranker.age_unreported(mirrors=[5], reported=[])
        assert kb.experience_of(5) == pytest.approx(0.25 * 0.8)

    def test_age_unreported_skips_reported(self):
        config = SoupConfig(experience_normalization="by_cap")
        kb = KnowledgeBase(owner=0)
        kb.set_experience(5, 0.8)
        ranker = RegularRanker(kb, config)
        ranker.age_unreported(mirrors=[5], reported=[5])
        assert kb.experience_of(5) == pytest.approx(0.8)


def test_ranking_delegates_to_kb():
    config = SoupConfig()
    kb = KnowledgeBase(owner=0)
    kb.set_experience(1, 0.5)
    kb.set_experience(2, 0.9)
    ranker = RegularRanker(kb, config)
    assert [n for n, _ in ranker.ranking()] == [2, 1]
