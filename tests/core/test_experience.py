"""Tests for experience sets and the Eq. (1) update."""

import pytest

from repro.core.experience import (
    ExperienceReport,
    ExperienceSet,
    ObservationRecord,
    update_experience,
)


class TestObservationRecord:
    def test_availability_empty(self):
        assert ObservationRecord().availability == 0.0

    def test_availability_ratio(self):
        record = ObservationRecord()
        record.observe(True)
        record.observe(True)
        record.observe(False)
        assert record.requests == 3
        assert record.successes == 2
        assert record.availability == pytest.approx(2 / 3)

    def test_copy_is_independent(self):
        record = ObservationRecord(5, 3)
        clone = record.copy()
        clone.observe(True)
        assert record.requests == 5


class TestExperienceSet:
    def test_observe_and_drain(self):
        es = ExperienceSet(observed_friend=7)
        es.observe(1, True)
        es.observe(1, False)
        es.observe(2, True)
        reports = es.drain(reporter=9, o_max=10)
        by_mirror = {r.mirror: r for r in reports}
        assert by_mirror[1].observations == 2
        assert by_mirror[1].availability == pytest.approx(0.5)
        assert by_mirror[2].availability == 1.0
        assert all(r.reporter == 9 for r in reports)

    def test_drain_resets(self):
        es = ExperienceSet(observed_friend=7)
        es.observe(1, True)
        es.drain(reporter=9, o_max=10)
        assert len(es) == 0
        assert es.drain(reporter=9, o_max=10) == []

    def test_drain_caps_at_o_max(self):
        es = ExperienceSet(observed_friend=7)
        for _ in range(50):
            es.observe(1, True)
        (report,) = es.drain(reporter=9, o_max=3)
        assert report.observations == 3
        assert report.availability == 1.0

    def test_record_for_unknown_mirror_empty(self):
        es = ExperienceSet(observed_friend=7)
        assert es.record_for(99).requests == 0


class TestUpdateExperienceByCap:
    """The formula exactly as printed in the paper."""

    def test_full_saturation_tracks_availability(self):
        reports = [
            ExperienceReport(reporter=j, mirror=1, observations=5, availability=0.8)
            for j in range(4)
        ]
        updated = update_experience({}, reports, alpha=1.0, o_max=5, normalization="by_cap")
        assert updated[1] == pytest.approx(0.8)

    def test_sparse_observations_are_diluted(self):
        reports = [
            ExperienceReport(reporter=1, mirror=1, observations=1, availability=1.0)
        ]
        updated = update_experience({}, reports, alpha=1.0, o_max=5, normalization="by_cap")
        assert updated[1] == pytest.approx(0.2)

    def test_aging_blends_old_value(self):
        reports = [
            ExperienceReport(reporter=1, mirror=1, observations=5, availability=1.0)
        ]
        updated = update_experience(
            {1: 0.4}, reports, alpha=0.75, o_max=5, normalization="by_cap"
        )
        assert updated[1] == pytest.approx(0.25 * 0.4 + 0.75 * 1.0)


class TestUpdateExperienceByObservations:
    def test_observation_weighted_mean(self):
        reports = [
            ExperienceReport(reporter=1, mirror=1, observations=3, availability=1.0),
            ExperienceReport(reporter=2, mirror=1, observations=1, availability=0.0),
        ]
        updated = update_experience(
            {}, reports, alpha=1.0, o_max=5, normalization="by_observations"
        )
        assert updated[1] == pytest.approx(3 / 4)

    def test_cap_bounds_single_reporter(self):
        # One reporter claiming 1000 observations is capped at o_max.
        reports = [
            ExperienceReport(reporter=1, mirror=1, observations=1000, availability=0.0),
            ExperienceReport(reporter=2, mirror=1, observations=5, availability=1.0),
        ]
        updated = update_experience(
            {}, reports, alpha=1.0, o_max=5, normalization="by_observations"
        )
        assert updated[1] == pytest.approx(0.5)

    def test_multiple_mirrors_updated_independently(self):
        reports = [
            ExperienceReport(reporter=1, mirror=1, observations=2, availability=1.0),
            ExperienceReport(reporter=1, mirror=2, observations=2, availability=0.0),
        ]
        updated = update_experience(
            {}, reports, alpha=1.0, o_max=5, normalization="by_observations"
        )
        assert updated[1] == 1.0
        assert updated[2] == 0.0


def test_unreported_mirrors_untouched():
    updated = update_experience(
        {5: 0.9},
        [ExperienceReport(reporter=1, mirror=1, observations=1, availability=1.0)],
        alpha=0.75,
        o_max=5,
    )
    assert 5 not in updated


def test_invalid_alpha_rejected():
    with pytest.raises(ValueError):
        update_experience({}, [], alpha=1.5, o_max=5)


def test_invalid_normalization_rejected():
    with pytest.raises(ValueError):
        update_experience({}, [], alpha=0.5, o_max=5, normalization="nope")


def test_malformed_report_rejected():
    bad = ExperienceReport(reporter=1, mirror=1, observations=1, availability=2.0)
    with pytest.raises(ValueError):
        update_experience({}, [bad], alpha=0.5, o_max=5)
