"""Tests for protective dropping (Sec. 4.6)."""

import pytest

from repro.core.config import SoupConfig
from repro.core.dropping import ReplicaStore


@pytest.fixture()
def config():
    return SoupConfig()


def make_store(capacity=5.0, config=None):
    return ReplicaStore(owner=999, capacity_profiles=capacity, config=config or SoupConfig())


def test_store_within_capacity(config):
    store = make_store(3.0, config)
    assert store.request_store(1).accepted
    assert store.request_store(2).accepted
    assert store.stores_for(1)
    assert store.replica_count() == 2
    assert store.free_profiles == 1.0


def test_no_self_storage(config):
    store = make_store()
    with pytest.raises(ValueError):
        store.request_store(999)


def test_restore_is_idempotent(config):
    store = make_store(2.0, config)
    assert store.request_store(1).accepted
    decision = store.request_store(1)
    assert decision.accepted
    assert decision.reason == "already stored"
    assert store.replica_count() == 1


def test_oversized_replica_rejected(config):
    store = make_store(2.0, config)
    assert not store.request_store(1, size_profiles=3.0).accepted


def test_eviction_picks_highest_dropping_score(config):
    store = make_store(2.0, config)
    store.request_store(1)
    store.request_store(2)
    # Owner 2 also stores everywhere: its score rises via exchanges.
    store.learn_friend_storage([2])
    store.learn_friend_storage([2])
    decision = store.request_store(3)
    assert decision.accepted
    assert decision.dropped_owner == 2
    assert store.stores_for(1)
    assert not store.stores_for(2)


def test_friends_protected_from_eviction(config):
    store = make_store(2.0, config)
    store.request_store(1, is_friend=True)
    store.request_store(2, is_friend=True)
    decision = store.request_store(3)
    assert not decision.accepted
    assert decision.reason == "storage exhausted"


def test_friend_scores_decrease(config):
    store = make_store(5.0, config)
    store.request_store(1, is_friend=True)
    store.learn_friend_storage([])
    assert store.dropping_score(1) == pytest.approx(-1.0 / config.beta)


def test_mismatch_penalty_and_three_strikes(config):
    store = make_store(5.0, config)
    store.request_store(1)
    # Two mismatches: score 200 < theta.
    store.observe_published_mirrors(1, announced=[5, 6])
    store.observe_published_mirrors(1, announced=[5])
    assert not store.is_blacklisted(1)
    # Third strike blacklists and evicts.
    removed = store.observe_published_mirrors(1, announced=[])
    assert removed == [1]
    assert store.is_blacklisted(1)
    assert not store.stores_for(1)


def test_honest_announcement_no_penalty(config):
    store = make_store(5.0, config)
    store.request_store(1)
    store.observe_published_mirrors(1, announced=[999, 5])
    assert store.dropping_score(1) == 0.0


def test_mismatch_for_unstored_owner_ignored(config):
    store = make_store(5.0, config)
    store.observe_published_mirrors(42, announced=[])
    assert store.dropping_score(42) == 0.0


def test_blacklisted_owner_rejected(config):
    store = make_store(5.0, config)
    store.request_store(1)
    for _ in range(3):
        store.observe_published_mirrors(1, announced=[])
    decision = store.request_store(1)
    assert not decision.accepted
    assert decision.reason == "blacklisted"
    assert store.blacklisted_owners() == {1}


def test_flooder_scores_rise_via_exchange(config):
    store = make_store(10.0, config)
    store.request_store(7)
    # Every exchanged friend also stores 7's data: the flooding signal.
    for _ in range(5):
        store.learn_friend_storage([7])
    assert store.dropping_score(7) == pytest.approx(5.0)


def test_remove_withdrawn_replica(config):
    store = make_store(5.0, config)
    store.request_store(1)
    assert store.remove(1)
    assert not store.remove(1)
    assert store.replica_count() == 0


def test_capacity_validation(config):
    with pytest.raises(ValueError):
        ReplicaStore(owner=1, capacity_profiles=0.0, config=config)


def test_eviction_frees_enough_space_for_larger_replica(config):
    store = make_store(3.0, config)
    store.request_store(1, size_profiles=1.0)
    store.request_store(2, size_profiles=1.0)
    store.request_store(3, size_profiles=1.0)
    decision = store.request_store(4, size_profiles=2.0)
    assert decision.accepted
    assert store.used_profiles <= 3.0


# --- threshold boundary behaviour (θ, c, 1/β exact values) -----------------


def test_blacklist_triggers_exactly_at_theta(config):
    """d_w ≥ θ blacklists: a score of exactly θ is already over the line."""
    store = make_store(5.0, config)
    store.request_store(1)
    store._scores[1] = config.theta - 1e-9
    assert store._check_blacklist() == []
    assert not store.is_blacklisted(1)
    store._scores[1] = float(config.theta)
    assert store._check_blacklist() == [1]
    assert store.is_blacklisted(1)
    assert not store.stores_for(1)


def test_theta_boundary_reachable_by_unit_increments(config):
    """θ unit (+1) co-storage observations — not θ−1, not θ+1 — blacklist."""
    store = make_store(500.0, config)
    store.request_store(1)
    for _ in range(int(config.theta) - 1):
        assert store.learn_friend_storage([1]) == []
    assert store.dropping_score(1) == pytest.approx(config.theta - 1)
    assert not store.is_blacklisted(1)
    assert store.learn_friend_storage([1]) == [1]
    assert store.dropping_score(1) == pytest.approx(config.theta)


def test_friend_discount_is_exactly_one_over_beta(config):
    store = make_store(5.0, config)
    store.request_store(1, is_friend=True)
    store.learn_friend_storage([])
    assert store.dropping_score(1) == pytest.approx(-1.0 / config.beta)
    # A co-storage observation nets +1 − 1/β for a friend.
    store.learn_friend_storage([1])
    assert store.dropping_score(1) == pytest.approx(2 * (-1.0 / config.beta) + 1.0)


def test_friend_discount_offsets_slow_flooding(config):
    """A friend co-stored every exchange gains only 1 − 1/β per round, so
    it takes β/(β−1) ≈ 5× longer to blacklist a friend than a stranger."""
    stranger_rounds = int(config.theta)
    friend_net = 1.0 - 1.0 / config.beta
    friend_rounds = int(config.theta / friend_net)
    assert friend_rounds > stranger_rounds
    store = make_store(500.0, config)
    store.request_store(1, is_friend=True)
    for _ in range(stranger_rounds):
        store.learn_friend_storage([1])
    assert not store.is_blacklisted(1)


def test_mismatch_penalty_is_exactly_c(config):
    store = make_store(5.0, config)
    store.request_store(1)
    store.observe_published_mirrors(1, announced=[777])
    assert store.dropping_score(1) == pytest.approx(config.mismatch_penalty)


def test_strikes_to_blacklist_matches_theta_over_c(config):
    """θ=300, c=100: the third announced/real mismatch blacklists."""
    strikes = -(-int(config.theta) // int(config.mismatch_penalty))  # ceil
    assert strikes == 3
    store = make_store(5.0, config)
    store.request_store(1)
    for strike in range(strikes - 1):
        assert store.observe_published_mirrors(1, announced=[]) == []
        assert not store.is_blacklisted(1), f"blacklisted after strike {strike + 1}"
    assert store.observe_published_mirrors(1, announced=[]) == [1]
    assert store.is_blacklisted(1)
