"""Tests for the knowledge base."""

import pytest

from repro.core.knowledge import KBEntry, KnowledgeBase


@pytest.fixture()
def kb():
    return KnowledgeBase(owner=100, default_ttl=3)


def test_add_and_contains(kb):
    kb.add_node(1)
    assert 1 in kb
    assert 2 not in kb
    assert len(kb) == 1


def test_no_self_entry(kb):
    with pytest.raises(ValueError):
        kb.add_node(100)


def test_friend_upgrade_preserved(kb):
    kb.add_node(1)
    kb.add_node(1, is_friend=True)
    assert kb.get(1).is_friend
    # Re-adding without the flag does not downgrade.
    kb.add_node(1)
    assert kb.get(1).is_friend


def test_friends_listing(kb):
    kb.add_node(1, is_friend=True)
    kb.add_node(2)
    kb.set_friend(3)
    assert sorted(kb.friends()) == [1, 3]


def test_experience_recording_and_clamping(kb):
    kb.set_experience(1, 0.7)
    assert kb.experience_of(1) == pytest.approx(0.7)
    kb.set_experience(1, 1.5)
    assert kb.experience_of(1) == 1.0
    kb.set_experience(1, -0.5)
    assert kb.experience_of(1) == 0.0


def test_experience_of_unknown_is_zero(kb):
    assert kb.experience_of(42) == 0.0


def test_ranked_candidates_sorted(kb):
    kb.set_experience(1, 0.2)
    kb.set_experience(2, 0.9)
    kb.set_experience(3, 0.5)
    assert [node for node, _ in kb.ranked_candidates()] == [2, 3, 1]


def test_unranked_nodes(kb):
    kb.add_node(1)
    kb.set_experience(2, 0.4)
    assert kb.unranked_nodes() == [1]


def test_ttl_decay_prunes_strangers(kb):
    kb.add_node(1)  # stranger, ttl=3
    for _ in range(2):
        assert kb.decay_ttls() == []
    assert kb.decay_ttls() == [1]
    assert 1 not in kb


def test_friends_never_expire(kb):
    kb.add_node(1, is_friend=True)
    for _ in range(10):
        kb.decay_ttls()
    assert 1 in kb


def test_mirrors_refresh_ttl(kb):
    kb.add_node(1)
    kb.mark_mirrors(iter([1]))
    for _ in range(10):
        kb.decay_ttls()
    assert 1 in kb
    # De-selecting restarts the countdown.
    kb.mark_mirrors(iter([]))
    for _ in range(3):
        kb.decay_ttls()
    assert 1 not in kb


def test_set_experience_refreshes_ttl(kb):
    kb.add_node(1)
    kb.decay_ttls()
    kb.decay_ttls()
    kb.set_experience(1, 0.3)
    assert kb.decay_ttls() == []  # countdown restarted


def test_entry_validation():
    with pytest.raises(ValueError):
        KBEntry(node_id=1, experience=1.5)


def test_iteration_yields_entries(kb):
    kb.add_node(1)
    kb.add_node(2, is_friend=True)
    ids = {entry.node_id for entry in kb}
    assert ids == {1, 2}
