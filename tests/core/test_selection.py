"""Tests for Algorithm 1 (mirror selection)."""

import random

import pytest

from repro.core.config import SoupConfig
from repro.core.selection import boosted_rank, select_mirrors


@pytest.fixture()
def config():
    return SoupConfig()


def rng():
    return random.Random(42)


def test_greedy_stops_at_epsilon(config):
    # Two mirrors at 0.9 reach perr = 0.01 = ε, which ends the paper's
    # "while perr > ε" loop.
    ranking = [(i, 0.9) for i in range(10)]
    result = select_mirrors(ranking, friends=[], config=config, rng=rng())
    assert len(result.mirrors) == 2
    assert result.estimated_error <= config.epsilon


def test_higher_ranks_need_fewer_mirrors(config):
    few = select_mirrors([(i, 0.99) for i in range(10)], [], config, rng())
    many = select_mirrors([(i, 0.5) for i in range(10)], [], config, rng())
    assert len(few.mirrors) < len(many.mirrors)


def test_top_ranked_selected_first(config):
    ranking = [(1, 0.95), (2, 0.2), (3, 0.99), (4, 0.1)]
    result = select_mirrors(ranking, friends=[], config=config, rng=rng())
    assert 3 in result.mirrors
    assert 1 in result.mirrors


def test_zero_rank_candidates_not_selected(config):
    ranking = [(1, 0.9), (2, 0.0), (3, 0.0)]
    result = select_mirrors(ranking, friends=[], config=config, rng=rng())
    assert 2 not in result.mirrors
    assert 3 not in result.mirrors or result.exploration_node == 3


def test_max_mirrors_cap():
    config = SoupConfig(max_mirrors=5)
    ranking = [(i, 0.1) for i in range(100)]
    result = select_mirrors(ranking, friends=[], config=config, rng=rng())
    assert len(result.mirrors) <= 5


def test_social_filter_replaces_stranger(config):
    # Stranger at 0.5 loses to an unselected friend at 0.45 (0.45·1.25 > 0.5).
    ranking = [(1, 0.9), (2, 0.9), (3, 0.9), (4, 0.5), (5, 0.45)]
    result = select_mirrors(ranking, friends=[5], config=config, rng=rng())
    if 4 in [old for old, _ in result.replacements]:
        assert 5 in result.mirrors
        assert 4 not in result.mirrors


def test_social_filter_does_not_promote_weak_friend(config):
    # Friend at 0.3: 0.3·1.25 = 0.375 < 0.9, no stranger is replaced.
    ranking = [(1, 0.9), (2, 0.9), (3, 0.9), (9, 0.3)]
    result = select_mirrors(ranking, friends=[9], config=config, rng=rng())
    assert result.replacements == []


def test_exploration_node_added(config):
    ranking = [(i, 0.9) for i in range(5)]
    result = select_mirrors(
        ranking, friends=[], config=config, rng=rng(), exploration_pool=[100, 101]
    )
    assert result.exploration_node in (100, 101)
    assert result.exploration_node in result.mirrors


def test_exploration_skips_already_selected(config):
    ranking = [(1, 0.99), (2, 0.99), (3, 0.99), (4, 0.99)]
    result = select_mirrors(
        ranking, friends=[], config=config, rng=rng(), exploration_pool=[1, 2]
    )
    # 1 and 2 are already mirrors; no duplicate exploration pick.
    assert len(result.mirrors) == len(set(result.mirrors))


def test_excluded_nodes_never_selected(config):
    ranking = [(1, 0.99), (2, 0.99), (3, 0.99), (4, 0.99)]
    result = select_mirrors(
        ranking,
        friends=[],
        config=config,
        rng=rng(),
        exploration_pool=[1, 5],
        exclude=[1, 5],
    )
    assert 1 not in result.mirrors
    assert 5 not in result.mirrors


def test_empty_ranking_selects_nothing(config):
    result = select_mirrors([], friends=[], config=config, rng=rng())
    assert result.mirrors == []
    assert result.estimated_error == 1.0


def test_rank_tie_break_is_randomized(config):
    ranking = [(i, 0.3) for i in range(50)]
    first = select_mirrors(ranking, [], config, random.Random(1)).mirrors
    second = select_mirrors(ranking, [], config, random.Random(2)).mirrors
    assert first != second  # different seeds explore different ties


def test_ranks_clamped_to_unit_interval(config):
    result = select_mirrors([(1, 5.0), (2, -3.0)], [], config, rng())
    assert 1 in result.mirrors
    assert result.estimated_error == 0.0  # rank clamped to 1.0


def test_boosted_rank():
    assert boosted_rank(0.5, False, 1.25) == 0.5
    assert boosted_rank(0.5, True, 1.25) == pytest.approx(0.625)
    assert boosted_rank(0.9, True, 1.25) == 1.0  # capped


def test_selection_result_container(config):
    result = select_mirrors([(1, 0.99), (2, 0.99), (3, 0.99)], [], config, rng())
    assert 1 in result
    assert len(result) == len(result.mirrors)
