"""Tests for SOUP objects."""

import pytest

from repro.core.objects import ObjectType, SoupObject


def test_sequence_monotonic():
    a = SoupObject(1, 2, ObjectType.MESSAGE)
    b = SoupObject(1, 2, ObjectType.MESSAGE)
    assert b.sequence > a.sequence


def test_signing_bytes_deterministic_for_same_object():
    obj = SoupObject(1, 2, ObjectType.MESSAGE, payload={"text": "hi"}, timestamp=5.0)
    assert obj.signing_bytes() == obj.signing_bytes()


def test_signing_bytes_cover_payload():
    a = SoupObject(1, 2, ObjectType.MESSAGE, payload={"text": "hi"}, timestamp=5.0)
    b = SoupObject(1, 2, ObjectType.MESSAGE, payload={"text": "yo"}, timestamp=5.0)
    assert a.signing_bytes() != b.signing_bytes()


def test_signing_bytes_cover_header_fields():
    a = SoupObject(1, 2, ObjectType.MESSAGE, payload=None, timestamp=1.0)
    b = SoupObject(1, 3, ObjectType.MESSAGE, payload=None, timestamp=1.0)
    assert a.signing_bytes() != b.signing_bytes()


def test_bytes_payload_supported():
    obj = SoupObject(1, 2, ObjectType.REPLICA_PUSH, payload=b"\x00\x01binary")
    assert b"binary" in obj.signing_bytes()
    assert obj.size_bytes() >= len(b"\x00\x01binary")


def test_size_accounts_for_payload():
    small = SoupObject(1, 2, ObjectType.MESSAGE, payload={"t": "x"})
    large = SoupObject(1, 2, ObjectType.MESSAGE, payload={"t": "x" * 5000})
    assert large.size_bytes() - small.size_bytes() >= 4500


def test_size_of_empty_payload_is_header_only():
    obj = SoupObject(1, 2, ObjectType.LOOKUP_ENTRY)
    assert obj.size_bytes() == 8 + 8 + 16 + 8 + 8 + 128


def test_is_signed():
    obj = SoupObject(1, 2, ObjectType.MESSAGE)
    assert not obj.is_signed()
    obj.signature = 12345
    assert obj.is_signed()


def test_payload_with_sets_serializable():
    obj = SoupObject(1, 2, ObjectType.PUBLISH_ENTRY, payload={"mirrors": {3, 1, 2}})
    assert obj.size_bytes() > 0
    assert obj.signing_bytes()


def test_all_object_types_distinct():
    values = [t.value for t in ObjectType]
    assert len(values) == len(set(values))
