"""Tests for SoupConfig validation and paper defaults."""

import pytest

from repro.core.config import SoupConfig


def test_paper_defaults():
    config = SoupConfig()
    assert config.alpha == 0.75
    assert config.beta == 1.25
    assert config.epsilon == 0.01
    assert config.theta == 300.0
    assert config.mismatch_penalty == 100.0
    assert config.storage_median_profiles == 50


def test_three_strike_principle():
    # theta=300, c=100: blacklisted after three mismatched mirror sets.
    assert SoupConfig().strikes_to_blacklist == 3


def test_alpha_bounds():
    SoupConfig(alpha=0.0)
    SoupConfig(alpha=1.0)
    with pytest.raises(ValueError):
        SoupConfig(alpha=-0.1)
    with pytest.raises(ValueError):
        SoupConfig(alpha=1.1)


def test_beta_must_boost():
    with pytest.raises(ValueError):
        SoupConfig(beta=0.9)


def test_epsilon_open_interval():
    with pytest.raises(ValueError):
        SoupConfig(epsilon=0.0)
    with pytest.raises(ValueError):
        SoupConfig(epsilon=1.0)


def test_o_max_positive():
    with pytest.raises(ValueError):
        SoupConfig(o_max=0)


def test_theta_and_penalty_positive():
    with pytest.raises(ValueError):
        SoupConfig(theta=0)
    with pytest.raises(ValueError):
        SoupConfig(mismatch_penalty=-1)


def test_max_mirrors_positive():
    with pytest.raises(ValueError):
        SoupConfig(max_mirrors=0)


def test_normalization_validated():
    SoupConfig(experience_normalization="by_cap")
    SoupConfig(experience_normalization="by_observations")
    SoupConfig(experience_normalization="aged_counts")
    with pytest.raises(ValueError):
        SoupConfig(experience_normalization="bogus")


def test_retention_open_interval():
    with pytest.raises(ValueError):
        SoupConfig(count_retention=0.0)
    with pytest.raises(ValueError):
        SoupConfig(count_retention=1.0)


def test_prior_weight_non_negative():
    SoupConfig(count_prior_weight=0.0)
    with pytest.raises(ValueError):
        SoupConfig(count_prior_weight=-1.0)
