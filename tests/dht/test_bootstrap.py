"""Tests for the bootstrap-node registry."""

import random

import pytest

from repro.dht.bootstrap import BootstrapRegistry


def test_register_and_pick():
    registry = BootstrapRegistry([1, 2, 3])
    assert len(registry) == 3
    assert registry.pick(random.Random(0)) in (1, 2, 3)


def test_register_idempotent():
    registry = BootstrapRegistry()
    registry.register(5)
    registry.register(5)
    assert registry.all() == [5]


def test_unregister():
    registry = BootstrapRegistry([1, 2])
    registry.unregister(1)
    assert registry.all() == [2]
    registry.unregister(99)  # no-op
    assert len(registry) == 1


def test_empty_pick_raises():
    with pytest.raises(LookupError):
        BootstrapRegistry().pick(random.Random(0))


def test_pick_spreads_load():
    registry = BootstrapRegistry(list(range(10)))
    rng = random.Random(1)
    picks = {registry.pick(rng) for _ in range(100)}
    assert len(picks) > 5
