"""Tests for Pastry routing tables and leaf sets."""

import pytest

from repro.dht.node_state import (
    ID_DIGITS,
    LeafSet,
    RoutingTable,
    digit_at,
    ring_distance,
    shared_prefix_length,
)


class TestDigits:
    def test_digit_extraction(self):
        node_id = 0xABCDEF0123456789
        assert digit_at(node_id, 0) == 0xA
        assert digit_at(node_id, 1) == 0xB
        assert digit_at(node_id, 15) == 0x9

    def test_digit_position_bounds(self):
        with pytest.raises(ValueError):
            digit_at(0, 16)
        with pytest.raises(ValueError):
            digit_at(0, -1)

    def test_shared_prefix(self):
        assert shared_prefix_length(0xAB00, 0xAB00) == ID_DIGITS
        a = 0xAB00_0000_0000_0000
        b = 0xAC00_0000_0000_0000
        assert shared_prefix_length(a, b) == 1

    def test_ring_distance_wraps(self):
        assert ring_distance(0, 1) == 1
        assert ring_distance(0, (1 << 64) - 1) == 1
        assert ring_distance(5, 5) == 0


class TestRoutingTable:
    def test_consider_places_by_prefix(self):
        owner = 0xA000_0000_0000_0000
        table = RoutingTable(owner)
        other = 0xB000_0000_0000_0000
        assert table.consider(other)
        assert table.entry(0, 0xB) == other

    def test_owner_not_inserted(self):
        table = RoutingTable(5)
        assert not table.consider(5)

    def test_first_entry_kept(self):
        owner = 0xA000_0000_0000_0000
        table = RoutingTable(owner)
        first = 0xB100_0000_0000_0000
        second = 0xB200_0000_0000_0000
        assert table.consider(first)
        assert not table.consider(second)
        assert table.entry(0, 0xB) == first

    def test_next_hop_matches_prefix(self):
        owner = 0xA000_0000_0000_0000
        table = RoutingTable(owner)
        target_region = 0xB500_0000_0000_0000
        table.consider(target_region)
        key = 0xB777_0000_0000_0000
        assert table.next_hop(key) == target_region

    def test_remove(self):
        owner = 0xA000_0000_0000_0000
        table = RoutingTable(owner)
        other = 0xB000_0000_0000_0000
        table.consider(other)
        table.remove(other)
        assert table.entry(0, 0xB) is None
        assert table.size() == 0

    def test_known_nodes(self):
        owner = 0xA000_0000_0000_0000
        table = RoutingTable(owner)
        nodes = [0xB000_0000_0000_0000, 0xA100_0000_0000_0000]
        for node in nodes:
            table.consider(node)
        assert sorted(table.known_nodes()) == sorted(nodes)


class TestLeafSet:
    def test_keeps_closest(self):
        leaf = LeafSet(owner=1000, half_size=2)
        for node in [1001, 1002, 1003, 1004, 999, 998, 2000, 5000]:
            leaf.consider(node)
        members = leaf.members()
        assert len(members) == 4
        assert 5000 not in members
        assert 1001 in members and 999 in members

    def test_owner_excluded(self):
        leaf = LeafSet(owner=10)
        leaf.consider(10)
        assert len(leaf) == 0

    def test_covers_within_span(self):
        leaf = LeafSet(owner=1000, half_size=2)
        leaf.consider_all([900, 1100])
        assert leaf.covers(1050)
        assert not leaf.covers(5000)

    def test_closest_to_includes_owner(self):
        leaf = LeafSet(owner=1000, half_size=2)
        leaf.consider_all([500, 2000])
        assert leaf.closest_to(1001) == 1000
        assert leaf.closest_to(1999) == 2000

    def test_remove(self):
        leaf = LeafSet(owner=0, half_size=2)
        leaf.consider(5)
        leaf.remove(5)
        assert 5 not in leaf

    def test_invalid_half_size(self):
        with pytest.raises(ValueError):
            LeafSet(owner=0, half_size=0)
