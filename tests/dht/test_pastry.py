"""Tests for the Pastry overlay: join, routing, leave, entry shifting."""

import random

import pytest

from repro.dht.pastry import DhtError, PastryOverlay
from repro.dht.storage import DirectoryEntry


def build_overlay(n, seed=42):
    rng = random.Random(seed)
    overlay = PastryOverlay()
    ids = []
    for i in range(n):
        node_id = rng.getrandbits(64)
        overlay.join(node_id, bootstrap_id=ids[0] if ids else None)
        ids.append(node_id)
    return overlay, ids, rng


def test_first_join_is_trivial():
    overlay = PastryOverlay()
    route = overlay.join(123)
    assert route.responsible == 123
    assert len(overlay) == 1


def test_duplicate_join_rejected():
    overlay = PastryOverlay()
    overlay.join(1)
    with pytest.raises(DhtError):
        overlay.join(1)


def test_routing_reaches_responsible_node():
    overlay, ids, rng = build_overlay(100)
    for _ in range(50):
        key = rng.getrandbits(64)
        start = rng.choice(ids)
        route = overlay.route(start, key)
        assert route.responsible == overlay._responsible_node(key)


def test_routing_hop_count_logarithmic():
    overlay, ids, rng = build_overlay(150)
    hops = []
    for _ in range(100):
        route = overlay.route(rng.choice(ids), rng.getrandbits(64))
        hops.append(route.hops)
    # Pastry routes in O(log16 N): ~2 for 150 nodes; allow generous slack.
    assert sum(hops) / len(hops) < 6


def test_publish_then_lookup_from_any_node():
    overlay, ids, rng = build_overlay(80)
    key = rng.getrandbits(64)
    entry = DirectoryEntry(soup_id=key, name="alice", mirror_ids=(1, 2))
    overlay.publish(ids[0], key, entry)
    found, route = overlay.lookup(ids[-1], key)
    assert found is not None
    assert found.name == "alice"
    assert found.mirror_ids == (1, 2)


def test_lookup_missing_key_returns_none():
    overlay, ids, rng = build_overlay(20)
    found, _ = overlay.lookup(ids[0], rng.getrandbits(64))
    assert found is None


def test_stale_version_does_not_overwrite():
    overlay, ids, rng = build_overlay(20)
    key = rng.getrandbits(64)
    overlay.publish(ids[0], key, DirectoryEntry(soup_id=key, name="v2", version=2))
    overlay.publish(ids[1], key, DirectoryEntry(soup_id=key, name="v1", version=1))
    found, _ = overlay.lookup(ids[2], key)
    assert found.name == "v2"


def test_entries_stay_at_responsible_nodes():
    overlay, ids, rng = build_overlay(60)
    for _ in range(40):
        key = rng.getrandbits(64)
        overlay.publish(rng.choice(ids), key, DirectoryEntry(soup_id=key))
    assert overlay.misplaced_entries() == []


def test_join_shifts_entries():
    overlay, ids, rng = build_overlay(30)
    keys = [rng.getrandbits(64) for _ in range(50)]
    for key in keys:
        overlay.publish(ids[0], key, DirectoryEntry(soup_id=key))
    overlay.transfer_log.clear()
    # New joins keep entries at their responsible nodes.
    for _ in range(10):
        overlay.join(rng.getrandbits(64), bootstrap_id=ids[0])
    assert overlay.misplaced_entries() == []


def test_leave_hands_over_entries():
    overlay, ids, rng = build_overlay(30)
    keys = [rng.getrandbits(64) for _ in range(60)]
    for key in keys:
        overlay.publish(ids[0], key, DirectoryEntry(soup_id=key))
    victim = overlay._responsible_node(keys[0])
    overlay.leave(victim)
    assert overlay.misplaced_entries() == []
    found, _ = overlay.lookup(ids[1] if ids[1] != victim else ids[2], keys[0])
    assert found is not None  # survived the handover


def test_fail_loses_entries_until_republished():
    overlay, ids, rng = build_overlay(30)
    key = rng.getrandbits(64)
    overlay.publish(ids[0], key, DirectoryEntry(soup_id=key, name="x"))
    holder = overlay._responsible_node(key)
    overlay.fail(holder)
    start = next(i for i in overlay.node_ids())
    found, _ = overlay.lookup(start, key)
    assert found is None  # abrupt failure: no handover
    # Republishing restores availability.
    overlay.publish(start, key, DirectoryEntry(soup_id=key, name="x2"))
    found, _ = overlay.lookup(start, key)
    assert found.name == "x2"


def test_routing_still_works_after_heavy_churn():
    overlay, ids, rng = build_overlay(100)
    alive = list(ids)
    for _ in range(40):
        victim = rng.choice(alive)
        alive.remove(victim)
        overlay.leave(victim)
    for _ in range(30):
        key = rng.getrandbits(64)
        route = overlay.route(rng.choice(alive), key)
        assert route.responsible == overlay._responsible_node(key)


def test_operations_on_unknown_node_rejected():
    overlay = PastryOverlay()
    overlay.join(1)
    with pytest.raises(DhtError):
        overlay.route(999, 5)
    with pytest.raises(DhtError):
        overlay.leave(999)
