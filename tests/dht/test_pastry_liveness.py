"""Tests for the overlay's liveness-aware directory operations.

With no liveness oracle installed every member counts as reachable (the
historical behaviour).  With one installed — as the deployment emulation
does — publish refuses to store at an unreachable home, and lookup
retries via alternate next-hops around dead responsibles.
"""

import pytest

from repro.dht.pastry import PastryOverlay
from repro.dht.storage import DirectoryEntry


def build_overlay(members):
    overlay = PastryOverlay()
    members = sorted(members)
    for index, node_id in enumerate(members):
        overlay.join(node_id, bootstrap_id=members[0] if index else None)
    return overlay


MEMBERS = [0x1000, 0x3000, 0x5000, 0x9000, 0xC000, 0xF000]


def entry_for(key):
    return DirectoryEntry(soup_id=key, name=f"user-{key:x}")


def test_no_oracle_preserves_historical_behaviour():
    overlay = build_overlay(MEMBERS)
    key = 0x5005
    route = overlay.publish(0x1000, key, entry_for(key))
    assert route.delivered
    entry, lookup_route = overlay.lookup(0xF000, key)
    assert entry is not None and lookup_route.delivered
    assert overlay.lookup_retries == 0
    assert overlay.publishes_unreachable == 0


def test_publish_to_unreachable_home_is_not_stored_elsewhere():
    overlay = build_overlay(MEMBERS)
    key = 0x5005
    home = overlay.route(0x1000, key).responsible
    overlay.set_liveness(lambda n: n != home)
    route = overlay.publish(0x1000, key, entry_for(key))
    assert not route.delivered
    assert overlay.publishes_unreachable == 1
    # Storing at an alternate would misplace the entry — nobody holds it.
    for member in MEMBERS:
        assert key not in overlay.entries_at(member)
    assert overlay.misplaced_entries() == []


def test_publish_succeeds_after_home_revives():
    overlay = build_overlay(MEMBERS)
    key = 0x5005
    home = overlay.route(0x1000, key).responsible
    alive = {m: m != home for m in MEMBERS}
    overlay.set_liveness(lambda n: alive[n])
    assert not overlay.publish(0x1000, key, entry_for(key)).delivered
    alive[home] = True
    route = overlay.publish(0x1000, key, entry_for(key))
    assert route.delivered
    assert key in overlay.entries_at(home)


def test_lookup_retries_alternates_when_home_dead():
    overlay = build_overlay(MEMBERS)
    key = 0x5005
    home = overlay.route(0x1000, key).responsible
    overlay.publish(0x1000, key, entry_for(key))
    overlay.set_liveness(lambda n: n != home)
    entry, route = overlay.lookup(0xF000, key)
    # Only the dead home holds the entry: the retry reaches a *live*
    # alternate that answers authoritatively ("not found"), which is a
    # delivered miss — not an unreachable result.
    assert entry is None
    assert route.delivered
    assert overlay.lookup_retries >= 1
    assert route.responsible != home


def test_lookup_finds_entry_rehomed_to_alternate():
    overlay = build_overlay(MEMBERS)
    key = 0x5005
    home = overlay.route(0x1000, key).responsible
    alternate = overlay.route(0x1000, key, avoid=frozenset({home})).responsible
    # Place the replica where an incomplete churn repair would leave it:
    # at the next-closest node rather than the structural home.
    overlay._nodes[alternate].entries[key] = entry_for(key)
    overlay.set_liveness(lambda n: n != home)
    entry, route = overlay.lookup(0xF000, key)
    assert entry is not None
    assert entry.name == f"user-{key:x}"
    assert route.responsible == alternate
    assert overlay.lookup_alternate_hits == 1


def test_lookup_gives_up_when_all_alternates_dead():
    overlay = build_overlay(MEMBERS)
    key = 0x5005
    overlay.publish(0x1000, key, entry_for(key))
    overlay.set_liveness(lambda n: False)
    entry, route = overlay.lookup(0xF000, key)
    assert entry is None
    assert not route.delivered
    assert overlay.lookup_retries <= overlay.lookup_max_alternates


def test_clearing_oracle_restores_structural_routing():
    overlay = build_overlay(MEMBERS)
    key = 0x5005
    home = overlay.route(0x1000, key).responsible
    overlay.publish(0x1000, key, entry_for(key))
    overlay.set_liveness(lambda n: n != home)
    assert overlay.lookup(0xF000, key)[0] is None
    overlay.set_liveness(None)
    entry, route = overlay.lookup(0xF000, key)
    assert entry is not None and route.delivered
