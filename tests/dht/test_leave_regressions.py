"""Regression tests for ``PastryOverlay.leave`` entry re-homing.

The seed implementation re-homed only the departing node's own entries,
leaving entries misplaced when a departure shifted *surviving* nodes'
responsibility regions (and leaf sets could go stale when full).  These
tests pin the failure modes the fix addressed: batches of concurrent
departures, adjacent-node departures, bootstrap-node departure, and a
publish whose responsible node departs immediately afterwards.
"""

import random

import pytest

from repro.dht.pastry import PastryOverlay
from repro.dht.storage import DirectoryEntry
from repro.sim.invariants import check_overlay


def build_overlay(n, seed=42):
    rng = random.Random(seed)
    overlay = PastryOverlay()
    ids = []
    for _ in range(n):
        node_id = rng.getrandbits(64)
        while node_id in overlay:
            node_id = rng.getrandbits(64)
        overlay.join(node_id, bootstrap_id=ids[0] if ids else None)
        ids.append(node_id)
    return overlay, ids, rng


def publish_keys(overlay, ids, rng, count):
    keys = []
    for _ in range(count):
        key = rng.getrandbits(64)
        overlay.publish(rng.choice(ids), key, DirectoryEntry(soup_id=key, name=str(key)))
        keys.append(key)
    return keys


def assert_all_reachable(overlay, ids, keys):
    assert overlay.misplaced_entries() == []
    survivors = [nid for nid in ids if nid in overlay]
    for key in keys:
        entry, _ = overlay.lookup(survivors[0], key)
        assert entry is not None, f"lost key {key:#x}"
        assert entry.name == str(key)


@pytest.mark.parametrize("seed", [0, 1, 7, 1337])
def test_batch_departures_rehome_every_entry(seed):
    """Several simultaneous departures leave no entry misplaced or lost."""
    overlay, ids, rng = build_overlay(40, seed=seed)
    keys = publish_keys(overlay, ids, rng, 30)
    for departing in rng.sample(ids, 10):
        overlay.leave(departing)
    check_overlay(overlay)
    assert_all_reachable(overlay, ids, keys)


def test_adjacent_nodes_departing_back_to_back():
    """Departure of ring-adjacent nodes shifts responsibility transitively."""
    overlay, ids, rng = build_overlay(30, seed=3)
    keys = publish_keys(overlay, ids, rng, 25)
    by_ring = sorted(nid for nid in ids)
    # Remove a contiguous run of four ring neighbours one after the other.
    start = len(by_ring) // 2
    for departing in by_ring[start : start + 4]:
        overlay.leave(departing)
        assert overlay.misplaced_entries() == []
    check_overlay(overlay)
    assert_all_reachable(overlay, ids, keys)


def test_bootstrap_node_departure():
    """The overlay survives losing the node everyone bootstrapped through."""
    overlay, ids, rng = build_overlay(25, seed=11)
    keys = publish_keys(overlay, ids, rng, 20)
    overlay.leave(ids[0])  # every later join used ids[0] as bootstrap
    check_overlay(overlay)
    assert_all_reachable(overlay, ids, keys)
    # The overlay must still accept and route new publishes.
    key = rng.getrandbits(64)
    overlay.publish(ids[-1], key, DirectoryEntry(soup_id=key, name="post"))
    entry, _ = overlay.lookup(ids[1], key)
    assert entry is not None and entry.name == "post"


def test_responsible_node_departs_right_after_publish():
    """A publish 'in flight' survives the responsible node's departure."""
    overlay, ids, rng = build_overlay(30, seed=5)
    for _ in range(20):
        key = rng.getrandbits(64)
        publisher = rng.choice([nid for nid in ids if nid in overlay])
        route = overlay.publish(
            publisher, key, DirectoryEntry(soup_id=key, name=str(key))
        )
        if route.responsible == publisher or len(overlay) <= 2:
            continue
        # The node that just accepted the entry departs before anyone reads.
        overlay.leave(route.responsible)
        reader = next(nid for nid in ids if nid in overlay)
        entry, _ = overlay.lookup(reader, key)
        assert entry is not None, f"publish to departing node lost key {key:#x}"
        assert entry.name == str(key)
    check_overlay(overlay)


def test_departures_interleaved_with_joins():
    """Churn (leave/join interleaving) keeps placement and routing exact."""
    overlay, ids, rng = build_overlay(20, seed=9)
    keys = publish_keys(overlay, ids, rng, 15)
    for step in range(15):
        live = [nid for nid in ids if nid in overlay]
        if step % 3 != 2 and len(live) > 4:
            overlay.leave(rng.choice(live))
        else:
            node_id = rng.getrandbits(64)
            while node_id in overlay:
                node_id = rng.getrandbits(64)
            overlay.join(node_id, bootstrap_id=live[0])
            ids.append(node_id)
        assert overlay.misplaced_entries() == []
    check_overlay(overlay)
    assert_all_reachable(overlay, ids, keys)
