"""Tests for directory entries."""

from repro.dht.storage import DirectoryEntry


def test_with_mirrors_bumps_version():
    entry = DirectoryEntry(soup_id=5, name="alice", mirror_ids=(1,), version=3)
    updated = entry.with_mirrors([7, 8])
    assert updated.version == 4
    assert updated.mirror_ids == (7, 8)
    assert updated.name == "alice"
    assert entry.mirror_ids == (1,)  # original untouched


def test_with_mirrors_preserves_key():
    entry = DirectoryEntry(soup_id=5, public_key="pk")
    assert entry.with_mirrors([1]).public_key == "pk"


def test_size_scales_with_contents():
    small = DirectoryEntry(soup_id=1)
    big = DirectoryEntry(
        soup_id=1,
        name="a-rather-long-user-name",
        interfaces=("10.0.0.1", "192.168.0.2"),
        mirror_ids=tuple(range(10)),
    )
    assert big.size_bytes() > small.size_bytes()
    assert big.size_bytes() - small.size_bytes() >= 10 * 8
