"""Declarative resilience gates: evaluation semantics and TOML loading.

A gate must never pass vacuously: missing or non-numeric metrics fail.
The bundled TOML-subset parser (for Pythons without :mod:`tomllib`) has
to agree with the real parser on the committed gate files.
"""

import pytest

from repro.deploy.gates import (
    Gate,
    _parse_gates_toml,
    evaluate_gates,
    gates_from_mapping,
    load_gates,
    resolve_metric,
)

REPORT = {
    "availability": {"mean": 0.97, "during_chaos_min": 0.8125, "final": 1.0},
    "latency": {"read": {"p99_s": 0.003}},
    "durability": {"lost_acked_updates": 0},
    "recovery": {"seconds": 0.4, "recovered": True},
}


class TestResolveMetric:
    def test_dotted_walk(self):
        assert resolve_metric(REPORT, "latency.read.p99_s") == 0.003

    def test_missing_hops_return_none(self):
        assert resolve_metric(REPORT, "latency.write.p99_s") is None
        assert resolve_metric(REPORT, "nope") is None
        assert resolve_metric(REPORT, "availability.mean.deeper") is None

    def test_numeric_hops_index_lists(self):
        report = {"availability": {"samples": [
            {"epoch": 0, "availability": 1.0},
            {"epoch": 1, "availability": 0.9},
            {"epoch": 2, "availability": 0.95},
        ]}}
        assert resolve_metric(report, "availability.samples.0.availability") == 1.0
        assert resolve_metric(report, "availability.samples.-1.availability") == 0.95
        assert resolve_metric(report, "availability.samples.1.epoch") == 1

    def test_list_indexing_failure_modes_return_none(self):
        report = {"samples": [{"v": 1.0}]}
        assert resolve_metric(report, "samples.3.v") is None  # out of range
        assert resolve_metric(report, "samples.-2.v") is None
        assert resolve_metric(report, "samples.first.v") is None  # not an int
        assert resolve_metric(report, "samples.0.v.deeper") is None

    def test_flat_keys_with_literal_dots(self):
        """SimulationResult.summary() flattens per-strategy metric groups
        into keys that contain dots; gates must reach them."""
        report = {
            "arch.cache.hit_rate": 0.42,
            "arch.dht.mean_lookup_hops": 1.8,
            "availability_steady": 0.97,
        }
        assert resolve_metric(report, "arch.cache.hit_rate") == 0.42
        assert resolve_metric(report, "arch.dht.mean_lookup_hops") == 1.8
        assert resolve_metric(report, "arch.cache.miss_rate") is None

    def test_longest_match_wins_with_backtracking(self):
        """A literal dotted key shadows a nested walk of the same spelling,
        but the resolver backtracks to shorter prefixes when the longer
        match dead-ends."""
        report = {
            "a.b": {"c": 1.0},
            "a": {"b": {"c": 2.0}, "x": {"y": 3.0}},
        }
        # Longest prefix "a.b" matches first and its remainder resolves.
        assert resolve_metric(report, "a.b.c") == 1.0
        # "a.x" is not a key: backtrack to "a", then walk x.y.
        assert resolve_metric(report, "a.x.y") == 3.0

    def test_mixed_flat_and_structured_hops(self):
        """Dotted flat keys compose with list indexing on either side."""
        report = {"arch.dht": {"samples": [{"hops": 2.0}, {"hops": 3.0}]}}
        assert resolve_metric(report, "arch.dht.samples.-1.hops") == 3.0


class TestEvaluate:
    def test_all_ops(self):
        report = {"x": 5}
        cases = [
            ("<=", 5, True), (">=", 5, True), ("<", 5, False),
            (">", 4, True), ("==", 5, True), ("!=", 5, False),
        ]
        for op, bound, expected in cases:
            verdict = evaluate_gates([Gate("g", "x", op, bound)], report)
            assert verdict["passed"] is expected, (op, bound)

    def test_violations_are_named(self):
        gates = [
            Gate("ok-gate", "availability.mean", ">=", 0.95),
            Gate("bad-gate", "availability.mean", ">=", 0.99),
        ]
        verdict = evaluate_gates(gates, REPORT)
        assert not verdict["passed"]
        assert verdict["violated"] == ["bad-gate"]
        by_name = {r["name"]: r for r in verdict["results"]}
        assert by_name["ok-gate"]["passed"]
        assert by_name["bad-gate"]["actual"] == 0.97
        assert "false" in by_name["bad-gate"]["reason"]

    def test_missing_metric_fails_not_passes(self):
        verdict = evaluate_gates([Gate("g", "recovery.missing", "<=", 1)], REPORT)
        assert not verdict["passed"]
        assert verdict["results"][0]["reason"] == "metric missing or not numeric"

    def test_non_numeric_metric_fails(self):
        verdict = evaluate_gates([Gate("g", "availability", "<=", 1)], REPORT)
        assert not verdict["passed"]

    def test_bool_metric_coerces_to_int(self):
        verdict = evaluate_gates([Gate("g", "recovery.recovered", "==", 1)], REPORT)
        assert verdict["passed"]

    def test_gate_validation(self):
        with pytest.raises(ValueError):
            Gate("g", "x", "~=", 1)
        with pytest.raises(ValueError):
            Gate("g", "", "<=", 1)


TOML_TEXT = """
# comment line
[[gate]]
name = "a"
metric = "availability.mean"   # trailing comment
op = ">="
value = 0.95
description = "mean stays up"

[[gate]]
name = "b"
metric = "durability.lost_acked_updates"
op = "<="
value = 0
"""


class TestLoading:
    def test_fallback_parser_matches_tomllib(self):
        tomllib = pytest.importorskip("tomllib")
        assert _parse_gates_toml(TOML_TEXT) == tomllib.loads(TOML_TEXT)

    def test_fallback_parser_handles_committed_gate_files(self):
        for path in ("configs/gates/smoke.toml", "configs/gates/strict.toml"):
            text = open(path, encoding="utf-8").read()
            gates = gates_from_mapping(_parse_gates_toml(text))
            assert gates, path
            assert all(g.name and g.metric for g in gates)

    def test_load_gates_from_file(self, tmp_path):
        path = tmp_path / "gates.toml"
        path.write_text(TOML_TEXT)
        gates = load_gates(path)
        assert [g.name for g in gates] == ["a", "b"]
        assert gates[0].value == 0.95 and gates[1].value == 0
        assert gates[1].description == ""

    def test_empty_gate_file_rejected(self, tmp_path):
        path = tmp_path / "gates.toml"
        path.write_text("# nothing here\n")
        with pytest.raises(ValueError):
            load_gates(path)

    def test_missing_keys_rejected(self):
        with pytest.raises(ValueError, match="missing key"):
            gates_from_mapping({"gate": [{"name": "x", "metric": "m", "op": "<="}]})

    def test_fallback_parser_rejects_garbage(self):
        with pytest.raises(ValueError):
            _parse_gates_toml("[other]\nname = 'x'\n")
        with pytest.raises(ValueError):
            _parse_gates_toml("name = 'orphan'\n")
        with pytest.raises(ValueError):
            _parse_gates_toml("[[gate]]\njust-a-line\n")

    def test_committed_smoke_gates_pass_a_healthy_report(self):
        gates = load_gates("configs/gates/smoke.toml")
        report = {
            "availability": {"mean": 0.99, "during_chaos_min": 0.85, "final": 1.0},
            "latency": {"read": {"p99_s": 0.01}},
            "durability": {"lost_acked_updates": 0},
            "recovery": {"seconds": 0.5},
        }
        assert evaluate_gates(gates, report)["passed"]

    def test_committed_strict_gates_fail_any_chaos_dip(self):
        gates = load_gates("configs/gates/strict.toml")
        report = {
            "availability": {"during_chaos_min": 0.99},
            "durability": {"lost_acked_updates": 0},
        }
        verdict = evaluate_gates(gates, report)
        assert not verdict["passed"]
        assert verdict["violated"] == ["availability-perfect"]
