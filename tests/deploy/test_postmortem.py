"""End-to-end post-mortem: kill chaos -> bundle -> reconstructed chains.

The PR's acceptance scenario: a resilience run with a kill fault on the
live backend produces a post-mortem bundle from which ``soup postmortem``
reconstructs at least one **cross-node causal chain** linking the kill to
a repair or unavailability window — and the sim-side anomaly detectors
run unchanged over the merged live trace.
"""

import json
import os

import pytest

from repro.cli import main as cli_main
from repro.deploy.live import ResilienceConfig, ResilienceHarness
from repro.deploy.postmortem import (
    BundleError,
    assemble_bundle,
    correlate,
    load_bundle,
)
from repro.obs.analysis import TraceAnalysis

EPOCHS = 14
KILLS = 8


@pytest.fixture(scope="module")
def run(tmp_path_factory):
    """One live run harsh enough that owners actually lose their data:
    8 of 10 nodes die, so some owners have no serving mirror left."""
    root = tmp_path_factory.mktemp("postmortem")
    obs_dir = str(root / "obs")
    report = ResilienceHarness(ResilienceConfig(
        n_nodes=10,
        seed=7,
        backend="live",
        chaos=f"kill:epoch=3:count={KILLS}",
        epochs=EPOCHS,
        epoch_s=0.15,
        load_rps=30.0,
        settle_s=0.1,
        obs_dir=obs_dir,
    )).run()
    report["gates"] = {"passed": True, "violated": [], "results": []}
    bundle_dir = assemble_bundle(obs_dir, str(root), report=report)
    return {"root": str(root), "obs_dir": obs_dir,
            "report": report, "bundle_dir": bundle_dir}


class TestObsReport:
    def test_report_carries_obs_section(self, run):
        obs = run["report"]["obs"]
        assert obs["trace_events"] > 0
        assert obs["trace_errors"] == 0
        assert obs["flight_files"] == 10 + 1  # nodes + harness
        assert obs["live_msgs"]["sent"] >= obs["live_msgs"]["recv"] > 0

    def test_every_chaos_event_has_a_trace_action(self, run):
        # Satellite #1: the chaos controller mirrors each FaultPlan step
        # into the trace with both scheduled and actual epoch.
        obs = run["report"]["obs"]
        chaos_events = run["report"]["chaos"]["events"]
        assert obs["chaos_actions"] == len(chaos_events) >= 1

    def test_availability_sampled_every_epoch(self, run):
        assert (
            run["report"]["obs"]["events_by_type"]["availability_sample"]
            == EPOCHS
        )


class TestBundleIntegrity:
    def test_assembly_is_content_keyed_and_idempotent(self, run):
        again = assemble_bundle(
            run["obs_dir"], run["root"], report=run["report"]
        )
        assert again == run["bundle_dir"]
        assert os.path.basename(again).startswith("bundle-")

    def test_load_verifies_hashes(self, run):
        bundle = load_bundle(run["bundle_dir"])
        assert bundle.report["gates"]["passed"] is True
        assert len(bundle.flight_paths()) == 10 + 1

    def test_tampered_file_is_rejected(self, run, tmp_path):
        import shutil

        copy = tmp_path / "bundle"
        shutil.copytree(run["bundle_dir"], copy)
        victim = next(copy.glob("flight/node-*.jsonl"))
        with open(victim, "a", encoding="utf-8") as handle:
            handle.write("{}\n")
        with pytest.raises(BundleError, match="corrupted"):
            load_bundle(str(copy))

    def test_non_bundle_dir_is_rejected(self, tmp_path):
        with pytest.raises(BundleError, match="MANIFEST"):
            load_bundle(str(tmp_path))


class TestCausalChains:
    def test_kill_chain_links_to_unavailability_cross_node(self, run):
        # The acceptance criterion: >= 1 cross-node chain linking the
        # kill to a repair round or an unavailability window.
        result = correlate(load_bundle(run["bundle_dir"]))
        assert len(result.chains) >= 1
        chain = result.chains[0]
        assert chain.action["kind"] == "kill"
        assert chain.action["scheduled_epoch"] == 3
        assert len(chain.victims) == KILLS
        assert chain.cross_node, "chain evidence must span >= 2 recorders"
        kinds = {link.kind for link in chain.links}
        assert kinds & {"repair_round", "unavailability"}, kinds
        # Every consequence references an actual victim of this action.
        for link in chain.links:
            if link.kind == "unavailability":
                assert link.data["owner"] in chain.victims
                assert link.epoch >= chain.action["epoch"]

    def test_sim_side_anomaly_detectors_ran_over_merged_trace(self, run):
        result = correlate(load_bundle(run["bundle_dir"]))
        analysis = result.analysis
        assert isinstance(analysis, TraceAnalysis)
        # The analyzer consumed the merged live trace: it reconstructed
        # the same owner-epoch unavailability total the harness reported.
        assert (
            analysis.total_unavailable_epochs
            == run["report"]["obs"]["unavailable_owner_epochs"]
            > 0
        )
        assert analysis.samples == EPOCHS
        assert isinstance(analysis.findings, list)
        # Victims' windows are attributed to the kill, not left causeless.
        victim_windows = [
            window
            for victim in result.chains[0].victims
            for window in analysis.windows_by_owner.get(victim, ())
        ]
        assert any(w.cause == "replica_loss" for w in victim_windows)


class TestPostmortemCli:
    def test_text_view_and_require_chain(self, run, capsys):
        rc = cli_main(["postmortem", run["bundle_dir"], "--require-chain"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "cross-node" in out
        assert "kill @epoch 3" in out

    def test_json_view_round_trips(self, run, capsys):
        rc = cli_main(["postmortem", run["bundle_dir"], "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "soup-postmortem/v1"
        assert payload["cross_node_chains"] >= 1
        assert payload["gates"]["passed"] is True

    def test_bad_bundle_exits_2(self, tmp_path, capsys):
        rc = cli_main(["postmortem", str(tmp_path)])
        assert rc == 2

    def test_live_top_renders_final_heartbeat(self, run, capsys):
        rc = cli_main(["live", "top", "--dir", run["obs_dir"], "--once"])
        out = capsys.readouterr().out
        assert rc == 0
        assert f"epoch {EPOCHS}/{EPOCHS} [done]" in out
        assert "messages:" in out
