"""The live TCP loopback backend: real sockets, same Transport semantics.

LiveTransport must present exactly the contract middleware already relies
on from SimNetwork — register/send/handlers/failure reasons/chaos — while
moving every frame through actual asyncio stream connections on
127.0.0.1.  These tests run small clusters inside ``asyncio.run`` and
assert on what arrived, what failed, and with which accounting.
"""

import asyncio

import pytest

from repro.deploy.live import AsyncClock, LiveTransport


def run(coro):
    return asyncio.run(coro)


async def make_net(n_nodes=3):
    clock = AsyncClock()
    net = LiveTransport(clock)
    received = {i: [] for i in range(n_nodes)}
    failures = {i: [] for i in range(n_nodes)}

    for node_id in range(n_nodes):
        def handler(sender, message, _inbox=received[node_id]):
            _inbox.append((sender, message))

        def on_failure(receiver, message, reason, _log=failures[node_id]):
            _log.append((receiver, message, reason))

        net.register(node_id, handler, on_failure=on_failure)
    await net.start()
    return clock, net, received, failures


def test_clock_runs_inside_event_loop_and_schedules():
    async def scenario():
        clock = AsyncClock()
        fired = []
        clock.schedule(0.01, lambda: fired.append(clock.now))
        t0 = clock.now
        await asyncio.sleep(0.05)
        clock.close()
        return t0, fired

    t0, fired = run(scenario())
    assert t0 >= 0.0
    assert len(fired) == 1 and fired[0] >= 0.01


def test_frames_round_trip_over_real_sockets():
    async def scenario():
        _, net, received, failures = await make_net()
        ports = {i: net.port_of(i) for i in range(3)}
        net.send(0, 1, ("ping", 1), size_bytes=128)
        net.send(1, 2, ("ping", 2), size_bytes=128)
        net.send(2, 0, {"k": "v"}, size_bytes=128)
        await net.drain(0.2)
        await net.close()
        return ports, received, failures, net.messages_delivered

    ports, received, failures, delivered = run(scenario())
    # Every node got a real ephemeral TCP port.
    assert all(isinstance(p, int) and p > 0 for p in ports.values())
    assert len(set(ports.values())) == 3
    assert received[1] == [(0, ("ping", 1))]
    assert received[2] == [(1, ("ping", 2))]
    assert received[0] == [(2, {"k": "v"})]
    assert delivered == 3
    assert all(log == [] for log in failures.values())


def test_offline_receiver_is_unreachable_with_failure_callback():
    async def scenario():
        _, net, received, failures = await make_net()
        net.set_online(1, False)
        net.send(0, 1, "lost", size_bytes=64)
        await net.drain(0.2)
        # Failure is surfaced after the simulated detection timeout.
        await asyncio.sleep(1.2)
        await net.close()
        return received, failures, dict(net.failures_by_reason)

    received, failures, reasons = run(scenario())
    assert received[1] == []
    assert failures[0] and failures[0][0] == (1, "lost", "unreachable")
    assert reasons.get("unreachable") == 1


def test_offline_sender_fails_immediately():
    async def scenario():
        _, net, _, failures = await make_net()
        net.set_online(0, False)
        net.send(0, 1, "dropped", size_bytes=64)
        await net.drain(0.2)
        await net.close()
        return failures, dict(net.failures_by_reason)

    failures, reasons = run(scenario())
    assert failures[0] == [(1, "dropped", "sender-offline")]
    assert reasons.get("sender-offline") == 1


def test_chaos_partition_and_pause_on_live_sockets():
    async def scenario():
        _, net, received, failures = await make_net()
        net.set_partition({0: 0, 1: 0, 2: 1})
        net.send(0, 1, "intra", size_bytes=64)
        net.send(0, 2, "cross", size_bytes=64)
        await net.drain(0.2)
        await asyncio.sleep(1.2)  # let the partitioned failure fire

        net.heal_partition()
        net.pause(1)
        net.send(0, 1, "while-paused", size_bytes=64)
        await net.drain(0.3)
        buffered_view = list(received[1])
        net.resume(1)
        await net.drain(0.3)
        await net.close()
        return received, failures, buffered_view, dict(net.failures_by_reason)

    received, failures, buffered_view, reasons = run(scenario())
    assert ("cross" not in [m for _, m in received[2]])
    assert (2, "cross", "partitioned") in failures[0]
    assert reasons.get("partitioned") == 1
    # Paused: the frame crossed the wire but was buffered, then flushed.
    assert buffered_view == [(0, "intra")]
    assert received[1] == [(0, "intra"), (0, "while-paused")]


def test_chaos_drop_is_seeded_on_live_backend():
    async def scenario(seed):
        _, net, received, _ = await make_net(2)
        net.set_drop(0.5, seed=seed)
        for i in range(30):
            net.send(0, 1, i, size_bytes=32)
        await net.drain(0.3)
        await net.close()
        return [m for _, m in received[1]]

    first = run(scenario(13))
    second = run(scenario(13))
    assert first == second
    assert 0 < len(first) < 30


def test_close_is_idempotent_and_stops_serving():
    async def scenario():
        _, net, received, _ = await make_net(2)
        net.send(0, 1, "before", size_bytes=32)
        await net.drain(0.2)
        await net.close()
        await net.close()  # second close must not raise
        return received

    received = run(scenario())
    assert received[1] == [(0, "before")]


def test_start_is_idempotent():
    async def scenario():
        clock = AsyncClock()
        net = LiveTransport(clock)
        net.register(0, lambda s, m: None)
        await net.start()
        port = net.port_of(0)
        await net.start()
        same = net.port_of(0)
        await net.close()
        return port, same

    port, same = run(scenario())
    assert port == same


def test_send_requires_registered_sender():
    async def scenario():
        _, net, _, _ = await make_net(2)
        with pytest.raises(KeyError):
            net.send(9, 0, "nope", size_bytes=8)
        await net.close()

    run(scenario())
