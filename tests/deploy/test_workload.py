"""Tests for the deployment workload builder."""

import random

import pytest

from repro.deploy.workload import build_workload


def test_paper_volumes():
    events = build_workload(31, 1800.0, random.Random(0))
    kinds = {}
    for event in events:
        kinds[event.kind] = kinds.get(event.kind, 0) + 1
    assert kinds["friendship"] == 282
    assert kinds["photo"] == 204
    assert kinds["message"] == 1189


def test_events_sorted_by_time():
    events = build_workload(31, 1800.0, random.Random(0))
    times = [e.time_s for e in events]
    assert times == sorted(times)


def test_friendships_front_loaded():
    events = build_workload(31, 900.0, random.Random(1))
    friend_times = [e.time_s for e in events if e.kind == "friendship"]
    assert max(friend_times) <= 300.0


def test_no_self_events():
    events = build_workload(10, 100.0, random.Random(2))
    assert all(e.actor != e.target for e in events)


def test_friendships_unique_pairs():
    events = build_workload(31, 1800.0, random.Random(3))
    pairs = [
        (min(e.actor, e.target), max(e.actor, e.target))
        for e in events
        if e.kind == "friendship"
    ]
    assert len(pairs) == len(set(pairs))


def test_friendships_capped_by_pair_count():
    events = build_workload(4, 100.0, random.Random(4), n_friendships=1000)
    friendships = [e for e in events if e.kind == "friendship"]
    assert len(friendships) == 6  # C(4, 2)


def test_too_few_users_rejected():
    with pytest.raises(ValueError):
        build_workload(1, 100.0, random.Random(0))
