"""Tests for the 31-node deployment emulation (Sec. 7)."""

import numpy as np
import pytest

from repro.deploy.emulation import Deployment


@pytest.fixture(scope="module")
def report():
    deployment = Deployment(n_desktop=27, n_mobile=4, seed=7)
    return deployment.run(duration_s=1200.0, selection_rounds=12)


def test_population_matches_paper(report):
    assert report.n_users == 31
    assert report.n_mobile == 4


def test_workload_volumes(report):
    assert report.friendships == 282
    assert report.messages_sent > 1000
    assert report.photos_shared >= 204


def test_no_data_loss(report):
    """The paper: "we did not observe a single loss"."""
    assert report.profile_requests > 0
    assert report.availability > 0.99


def test_mirror_sets_stabilize(report):
    """Fig. 14c: after the initial rounds, variance falls toward ~1 (the
    random exploration node)."""
    variance = report.mirror_variance_by_round
    assert len(variance) >= 10
    early = np.mean(variance[:3])
    late = np.mean(variance[-3:])
    assert late < early
    assert late < 3.0


def test_gateway_control_traffic_shape(report):
    """Fig. 14a: spikes of tens of KB/s on join/leave; otherwise quiet."""
    series = [kb for _, kb in report.gateway_series]
    assert 10.0 <= max(series) <= 80.0
    busy = sum(1 for kb in series if kb > 5.0)
    assert busy < len(series) * 0.1  # quiet most of the time


def test_user_traffic_mostly_idle(report):
    """Fig. 14b: messaging is hardly distinguishable from an idle link."""
    series = [kb for _, kb in report.busiest_user_series]
    idle_fraction = np.mean(np.array(series) < 5.0)
    assert idle_fraction > 0.6
    assert max(series) > 100  # but publication events do spike


def test_deployment_needs_gateway():
    with pytest.raises(ValueError):
        Deployment(n_desktop=0)


def test_by_id_crypto_mode_matches_full_deployment():
    """crypto_mode only swaps the signature scheme: a by_id deployment runs
    the same workload with the same outcome counts, and no object is
    dropped for verification reasons in either mode."""

    def run(mode):
        deployment = Deployment(
            n_desktop=6, n_mobile=1, seed=7, crypto_mode=mode
        )
        report = deployment.run(duration_s=300.0, selection_rounds=4)
        dropped = sum(node.dropped_objects for node in deployment.users)
        assert all(
            node.security.crypto_mode == mode for node in deployment.users
        )
        return report, dropped

    full_report, full_dropped = run("full")
    by_id_report, by_id_dropped = run("by_id")
    assert full_dropped == by_id_dropped == 0
    assert by_id_report.friendships == full_report.friendships
    assert by_id_report.messages_sent == full_report.messages_sent
    assert by_id_report.photos_shared == full_report.photos_shared
    assert by_id_report.profile_requests == full_report.profile_requests
    assert by_id_report.profile_failures == full_report.profile_failures


class TestDeploymentArchitectures:
    """The pluggable architecture layer also drives the live deployment."""

    @staticmethod
    def run(architecture):
        deployment = Deployment(
            n_desktop=8, n_mobile=2, seed=7, architecture=architecture
        )
        report = deployment.run(duration_s=300.0, selection_rounds=4)
        return deployment, report

    def test_default_is_soup_with_no_arch_metrics(self):
        _, report = self.run("soup")
        assert report.architecture == "soup"
        assert report.arch_metrics == {}

    def test_cache_architecture_serves_reads_locally(self):
        deployment, report = self.run("cache")
        assert report.architecture == "cache"
        cache = report.arch_metrics["cache"]
        assert cache["hits"] + cache["misses"] > 0
        assert 0.0 <= cache["hit_rate"] <= 1.0
        assert all(u.read_cache is not None for u in deployment.users)

    def test_superpeer_architecture_elects_and_accounts(self):
        _, report = self.run("superpeer")
        economy = report.arch_metrics["selection"]
        assert economy["superpeer_count"] >= 1
        assert economy["elections"] >= 1  # one election per selection round run
        assert 0.0 <= economy["slot_utilization"] <= 1.0

    def test_social_dht_architecture_keeps_workload_intact(self):
        _, report = self.run("social_dht")
        assert report.architecture == "social_dht"
        assert report.arch_metrics["placement"]["keys_remapped"] > 0
        assert "shortcut_offers" in report.arch_metrics["routing"]
        assert report.availability > 0.99

    def test_unknown_architecture_rejected(self):
        with pytest.raises(ValueError):
            Deployment(n_desktop=4, architecture="peerson")
