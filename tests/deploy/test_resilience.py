"""The resilience harness: backend equivalence, determinism, and gates.

The claims under test are the PR's acceptance criteria:

* the SAME SoupNode code paths run on the simulated and the live TCP
  backend, and availability accounting comes out identical;
* two same-seed runs replay the same chaos and produce the same report
  (modulo wall-clock timestamps);
* the ``soup resilience`` CLI exits 0 when every gate passes and 5 when
  a gate is violated, naming the gate in the report.
"""

import json

import pytest

from repro.cli import main as cli_main
from repro.deploy.live import ResilienceConfig, ResilienceHarness

CHAOS = "kill:epoch=3:count=3;partition:epoch=5:heal=7"


def run_harness(backend, **overrides):
    defaults = dict(
        n_nodes=10,
        seed=7,
        backend=backend,
        chaos=CHAOS,
        epochs=9,
        epoch_s=0.15,
        load_rps=30.0,
        settle_s=0.1,
    )
    defaults.update(overrides)
    return ResilienceHarness(ResilienceConfig(**defaults)).run()


def strip_wallclock(records):
    """Drop the clock column: ``t`` is sim-time on the sim backend and
    wall-clock on the live one, so only the structural fields compare."""
    return [{k: v for k, v in record.items() if k != "t"} for record in records]


@pytest.fixture(scope="module")
def sim_report():
    return run_harness("sim")


@pytest.fixture(scope="module")
def live_report():
    return run_harness("live")


class TestBackendEquivalence:
    def test_availability_series_identical(self, sim_report, live_report):
        # Structural determinism: availability is computed from membership,
        # mirror sets, and chaos state — all of which evolve identically on
        # both backends under the same seed.  Exact equality, not tolerance.
        assert strip_wallclock(sim_report["availability"]["samples"]) == (
            strip_wallclock(live_report["availability"]["samples"])
        )

    def test_chaos_replays_identically(self, sim_report, live_report):
        assert strip_wallclock(sim_report["chaos"]["events"]) == (
            strip_wallclock(live_report["chaos"]["events"])
        )
        assert sim_report["chaos"]["killed"] == live_report["chaos"]["killed"]

    def test_durability_identical(self, sim_report, live_report):
        assert sim_report["durability"] == live_report["durability"]
        assert sim_report["durability"]["lost_acked_updates"] == 0
        assert sim_report["durability"]["acked_updates"] > 0

    def test_live_backend_really_used_sockets(self, live_report):
        assert live_report["config"]["backend"] == "live"
        assert live_report["net"]["delivered"] > 0


class TestDeterminism:
    def test_same_seed_live_runs_match(self, live_report):
        again = run_harness("live")
        assert strip_wallclock(again["availability"]["samples"]) == (
            strip_wallclock(live_report["availability"]["samples"])
        )
        assert strip_wallclock(again["chaos"]["events"]) == (
            strip_wallclock(live_report["chaos"]["events"])
        )
        assert again["durability"] == live_report["durability"]
        assert again["requests"] == live_report["requests"]

    def test_different_seed_changes_chaos_victims(self, sim_report):
        other = run_harness("sim", seed=8)
        mine = [e for e in sim_report["chaos"]["events"] if e["kind"] == "kill"]
        theirs = [e for e in other["chaos"]["events"] if e["kind"] == "kill"]
        assert mine and theirs
        assert mine[0]["nodes"] != theirs[0]["nodes"]


class TestReportShape:
    def test_schema_and_sections(self, sim_report):
        assert sim_report["schema"] == "soup-resilience/v1"
        for section in (
            "config", "chaos", "availability", "latency", "requests",
            "durability", "recovery", "reliability", "net",
        ):
            assert section in sim_report, section

    def test_chaos_dips_availability_then_recovers(self, sim_report):
        availability = sim_report["availability"]
        assert availability["during_chaos_min"] < 1.0
        assert availability["final"] >= availability["during_chaos_min"]
        assert sim_report["recovery"]["applicable"]
        assert sim_report["recovery"]["recovered"]

    def test_latency_percentiles_recorded(self, sim_report):
        read = sim_report["latency"]["read"]
        assert read["count"] > 0
        # Quantiles are bucket-boundary estimates: monotone in q, but the
        # p99 bound may sit above the true max.
        assert 0 <= read["p50_s"] <= read["p95_s"] <= read["p99_s"]
        assert read["max_s"] > 0


class TestCliGates:
    def test_passing_gates_exit_zero(self, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        code = cli_main([
            "resilience", "--nodes", "12", "--backend", "sim",
            "--chaos", CHAOS, "--epochs", "9",
            "--gates", "configs/gates/smoke.toml",
            "--report", str(report_path),
        ])
        assert code == 0
        report = json.loads(report_path.read_text())
        assert report["gates"]["passed"] is True
        assert report["gates"]["violated"] == []
        out = capsys.readouterr().out
        assert "PASS" in out and "FAIL" not in out

    def test_violated_gate_exits_five_and_is_named(self, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        code = cli_main([
            "resilience", "--nodes", "12", "--backend", "sim",
            "--chaos", CHAOS, "--epochs", "9",
            "--gates", "configs/gates/strict.toml",
            "--report", str(report_path),
        ])
        assert code == 5
        report = json.loads(report_path.read_text())
        assert report["gates"]["passed"] is False
        assert "availability-perfect" in report["gates"]["violated"]
        assert "availability-perfect" in capsys.readouterr().out

    def test_no_gates_means_report_only_exit_zero(self, capsys):
        code = cli_main([
            "resilience", "--nodes", "8", "--backend", "sim",
            "--chaos", "", "--epochs", "4",
        ])
        assert code == 0
        assert "availability mean=" in capsys.readouterr().out
