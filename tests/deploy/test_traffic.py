"""Tests for the Fig. 15 mirror-load model."""

import random

import numpy as np
import pytest

from repro.deploy.traffic import MirrorLoadModel, build_inventory


class TestInventory:
    def test_totals_match_measurements(self):
        inventory = build_inventory(random.Random(0))
        total_items = sum(len(sizes) for sizes in inventory.values())
        total_bytes = sum(sum(sizes) for sizes in inventory.values())
        assert total_items == pytest.approx(2035, abs=3)
        assert total_bytes == pytest.approx(206e6, rel=0.02)

    def test_kinds_present(self):
        inventory = build_inventory(random.Random(0))
        assert set(inventory) == {"text", "photo", "video"}
        assert len(inventory["video"]) >= 1


class TestMirrorLoad:
    def test_low_rate_light_traffic(self):
        result = MirrorLoadModel(seed=1).run(request_rate=1.0, duration_s=120)
        assert result.mean_kb_per_s < 200
        assert result.requests_timed_out == 0

    def test_mean_below_600_kb_at_20rps(self):
        """The paper's headline: average well below 600 KB/s at 20 req/s."""
        result = MirrorLoadModel(seed=1).run(request_rate=20.0, duration_s=300)
        assert result.mean_kb_per_s < 600

    def test_bandwidth_monotone_in_rate(self):
        model = MirrorLoadModel(seed=2)
        means = [
            model.run(rate, duration_s=200).mean_kb_per_s for rate in (1.0, 10.0, 20.0)
        ]
        assert means[0] < means[1] <= means[2] * 1.05

    def test_uplink_capacity_respected(self):
        model = MirrorLoadModel(uplink_bytes_per_s=500_000, seed=3)
        result = model.run(request_rate=20.0, duration_s=120)
        assert result.peak_kb_per_s <= 500_000 / 1024 + 1

    def test_overload_causes_timeouts(self):
        """'A request might time out once a mirror becomes overloaded.'"""
        model = MirrorLoadModel(uplink_bytes_per_s=100_000, timeout_s=3.0, seed=4)
        result = model.run(request_rate=20.0, duration_s=120)
        assert result.requests_timed_out > 0

    def test_spikes_exist_at_high_rate(self):
        """Large items cause spikes that saturate the uplink while the
        average stays well below it (the Fig. 15 shape)."""
        model = MirrorLoadModel(seed=5)
        result = model.run(request_rate=20.0, duration_s=300)
        assert result.peak_kb_per_s > 1.3 * result.mean_kb_per_s
        assert result.peak_kb_per_s == pytest.approx(
            model.uplink_bytes_per_s / 1024, rel=0.01
        )

    def test_sweep_covers_paper_rates(self):
        results = MirrorLoadModel(seed=0).sweep(duration_s=60)
        assert [r.request_rate for r in results] == [1.0, 10.0, 20.0]

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            MirrorLoadModel().run(request_rate=0.0)
