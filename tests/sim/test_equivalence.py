"""Behavioral equivalence of the columnar fast path vs. the reference loop.

The epoch-loop overhaul (columnar node-state arrays, pooled network
events, packed experience counters) is pure mechanical optimization: for
any scenario and seed, ``engine_mode="columnar"`` must produce the *same
simulation* as ``engine_mode="reference"`` — identical result JSON and
byte-identical structured traces.  These tests pin that contract across
the three scenario families the overhaul touches most: the plain fig5
availability run, the fig7 cohort run with churny settings, and a fig8
altruist run with faults layered on top.
"""

import json

import pytest

from repro.graphs.datasets import generate_dataset
from repro.obs import Tracer, set_tracer
from repro.sim.engine import run_scenario
from repro.sim.scenario import ScenarioConfig

#: (id, overrides) — every config runs once per engine mode at a fixed seed.
SCENARIOS = [
    (
        "fig5_availability",
        dict(dataset="facebook", scale=0.01, n_days=6, seed=3),
    ),
    (
        "fig7_cohorts_churny",
        dict(
            dataset="epinions",
            scale=0.01,
            n_days=5,
            seed=11,
            departure_fraction=0.1,
            departure_day=2.0,
        ),
    ),
    (
        "fig8_altruists_faults",
        dict(
            dataset="facebook",
            scale=0.01,
            n_days=5,
            seed=7,
            altruist_fraction=0.05,
            altruist_join_day=2.0,
            faults="crash:epoch=30:count=2",
            check_invariants=True,
        ),
    ),
    # Non-default architecture + shadow-DHT probe: repro.arch strategies
    # are RNG-free and the probe draws no randomness, so columnar and
    # reference must stay byte-identical here too.
    (
        "arch_superpeer_dht",
        dict(
            dataset="facebook",
            scale=0.008,
            n_days=4,
            seed=9,
            architecture="superpeer",
            measure_dht=True,
        ),
    ),
]


def _run(overrides, engine_mode, trace_path=None):
    config = ScenarioConfig(engine_mode=engine_mode, **overrides)
    graph = generate_dataset(
        config.dataset, scale=config.scale, seed=config.seed
    )
    tracer = None
    if trace_path is not None:
        tracer = Tracer.to_path(str(trace_path))
        set_tracer(tracer)
    try:
        result = run_scenario(config, graph)
    finally:
        if tracer is not None:
            set_tracer(None)
            tracer.close()
    return result


@pytest.mark.parametrize(
    "overrides", [s[1] for s in SCENARIOS], ids=[s[0] for s in SCENARIOS]
)
def test_columnar_matches_reference_result_json(overrides):
    reference = _run(overrides, "reference")
    columnar = _run(overrides, "columnar")
    ref_json = json.dumps(reference.to_json_dict(include_derived=True), sort_keys=True)
    col_json = json.dumps(columnar.to_json_dict(include_derived=True), sort_keys=True)
    assert ref_json == col_json


@pytest.mark.parametrize(
    "overrides", [s[1] for s in SCENARIOS], ids=[s[0] for s in SCENARIOS]
)
def test_columnar_matches_reference_trace_bytes(overrides, tmp_path):
    ref_path = tmp_path / "reference.jsonl"
    col_path = tmp_path / "columnar.jsonl"
    _run(overrides, "reference", trace_path=ref_path)
    _run(overrides, "columnar", trace_path=col_path)
    ref_bytes = ref_path.read_bytes()
    assert ref_bytes, "reference run produced an empty trace"
    assert ref_bytes == col_path.read_bytes()


def test_engine_mode_validation():
    with pytest.raises(ValueError):
        ScenarioConfig(engine_mode="vectorized").validate()
    with pytest.raises(ValueError):
        ScenarioConfig(crypto_mode="none").validate()


def test_architecture_validation():
    with pytest.raises(ValueError):
        ScenarioConfig(architecture="peerson").validate()
    with pytest.raises(ValueError):
        ScenarioConfig(architecture="superpeer", arch_superpeer_fraction=1.5).validate()
    with pytest.raises(ValueError):
        ScenarioConfig(architecture="cache", arch_cache_capacity=0).validate()
    for name in ("soup", "superpeer", "social_dht", "cache"):
        ScenarioConfig(architecture=name).validate()
