"""Tests for result rendering."""

import numpy as np
import pytest

from repro.sim.metrics import SimulationResult
from repro.sim.reporting import describe_result, markdown_report, sparkline


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_length_matches_input(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_monotone_series_monotone_blocks(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert line == "▁▂▃▄▅▆▇█"

    def test_flat_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_pinned_scale(self):
        # 0.75 on a [0,1] scale is a mid-high block regardless of data range.
        high = sparkline([0.75], 0.0, 1.0)
        free = sparkline([0.75])
        assert high != free or free == "▁"

    def test_clipping_out_of_scale(self):
        line = sparkline([-10, 0.5, 10], 0.0, 1.0)
        assert line[0] == "▁"
        assert line[-1] == "█"


@pytest.fixture()
def result():
    r = SimulationResult(n_nodes=10, n_epochs=48, epochs_per_day=24)
    r.availability = np.linspace(0.8, 1.0, 48)
    r.replica_overhead = np.full(48, 6.0)
    r.drop_rate_by_round = [0.02, 0.01]
    r.blacklisted_owner_count = 3
    return r


def test_describe_result_lines(result):
    lines = describe_result("test-run", result)
    text = "\n".join(lines)
    assert "test-run" in text
    assert "availability" in text
    assert "blacklist entries: 3" in text
    assert "final=0.0100" in text


def test_markdown_report(result):
    report = markdown_report({"run-a": result, "run-b": result})
    assert report.count("| run-a ") == 1
    assert report.count("| run-b ") == 1
    assert report.startswith("| run |")
    assert report.strip().endswith("|")
