"""Tests for the runtime invariant checker and fault-injection harness.

Three families:

* clean runs — every paper scenario (base, departure, attacks) completes
  with per-epoch invariant checking on and zero violations;
* fault-injected runs — each injected fault kind either trips the checker
  with a structured :class:`InvariantViolation` whose one-line repro
  string replays to the same violation, or (for benign faults) the
  protocol absorbs it and the run stays green;
* the repro-string format itself — format/parse round-trips.
"""

import dataclasses

import pytest

from repro.sim.faults import FaultInjector, FaultSpec
from repro.sim.invariants import (
    ENGINE_INVARIANTS,
    InvariantChecker,
    InvariantViolation,
    format_repro,
    parse_repro,
)
from repro.sim.scenario import ScenarioConfig
from repro.testing import expect_violation, run_checked


def tiny_config(**overrides):
    base = dict(dataset="epinions", scale=0.004, n_days=4, seed=3)
    base.update(overrides)
    return ScenarioConfig(**base)


# --- clean runs stay green ------------------------------------------------


def test_base_scenario_holds_all_invariants():
    result = run_checked(tiny_config())
    assert result.availability[-1] > 0


def test_departure_scenario_holds_all_invariants():
    """Fig. 9: a 5 % mass departure never leaves protocol state torn."""
    result = run_checked(
        tiny_config(departure_fraction=0.05, departure_day=2, n_days=4)
    )
    assert result.availability[-1] > 0


@pytest.mark.parametrize(
    "overrides",
    [
        dict(slander_fraction=0.5),
        dict(sybil_fraction=0.3, sybil_flood_requests=30),
        dict(altruist_fraction=0.02, altruist_join_day=2),
        dict(traitor_fraction=0.1, betrayal_day=2),
    ],
    ids=["slander", "flooding", "altruism", "traitors"],
)
def test_attack_scenarios_hold_all_invariants(overrides):
    run_checked(tiny_config(**overrides))


def test_invariant_subset_selection():
    config = tiny_config(
        check_invariants=True, invariant_names=("storage-within-capacity",)
    )
    run_checked(config)
    with pytest.raises(ValueError, match="unknown invariant"):
        tiny_config(invariant_names=("no-such-invariant",))


# --- injected faults trip the checker -------------------------------------


def test_dropped_transfer_raises_structured_violation():
    violation = expect_violation(
        tiny_config(seed=3, n_days=6, faults="drop_transfer:rate=1.0:from_epoch=24"),
        invariant="announced-mirrors-stored",
    )
    assert violation.epoch >= 24
    assert violation.node_ids  # names the owner/mirror pair involved
    assert violation.violations[0].snapshot  # minimal state snapshot attached
    assert violation.repro.startswith("soup-repro/v1 ")
    assert "faults=drop_transfer:rate=1.0:from_epoch=24" in violation.repro


def test_violation_serializes_for_triage():
    violation = expect_violation(
        tiny_config(n_days=6, faults="drop_transfer:rate=1.0:from_epoch=24")
    )
    payload = violation.to_dict()
    assert payload["invariant"] == violation.invariant
    assert payload["epoch"] == violation.epoch
    assert payload["repro"] == violation.repro


def test_crash_fault_is_absorbed_cleanly():
    """A mid-run crash is a protocol-legal departure: no violation."""
    run_checked(tiny_config(n_days=4, faults="crash:epoch=48:count=2"))


def test_reorder_and_stale_report_faults_are_benign():
    """Report reordering/staleness degrade rankings, never consistency."""
    run_checked(tiny_config(n_days=4, faults="reorder:rate=1.0"))
    run_checked(tiny_config(n_days=4, faults="stale_reports:rate=0.5"))


def test_fault_injection_is_deterministic():
    config = tiny_config(n_days=6, faults="drop_transfer:rate=0.5:from_epoch=24")
    first = expect_violation(config)
    second = expect_violation(config)
    assert (first.invariant, first.epoch) == (second.invariant, second.epoch)


# --- the repro-string contract --------------------------------------------


def test_format_parse_round_trip():
    config = tiny_config(
        n_days=6,
        departure_fraction=0.05,
        departure_day=2,
        faults="drop_transfer:rate=1.0:from_epoch=24",
    )
    line = format_repro(config)
    parsed = parse_repro(line)
    assert parsed.check_invariants  # replays always check
    for field in ("dataset", "scale", "seed", "n_days", "departure_fraction",
                  "departure_day", "faults"):
        assert getattr(parsed, field) == getattr(config, field), field


def test_repro_line_omits_defaults():
    line = format_repro(tiny_config())
    assert "departure" not in line
    assert "faults" not in line
    assert line.startswith("soup-repro/v1 ")


def test_parse_rejects_garbage():
    with pytest.raises(ValueError):
        parse_repro("not a repro line")


# --- spec strings and checker construction ---------------------------------


def test_fault_spec_round_trip():
    spec = "drop_transfer:rate=0.25:from_epoch=10:to_epoch=20;crash:epoch=5:count=1"
    injector = FaultInjector.from_spec(spec, base_seed=7)
    assert ";".join(s.to_string() for s in injector.specs) == spec


def test_malformed_fault_spec_fails_at_config_time():
    with pytest.raises(ValueError):
        tiny_config(faults="warp_core_breach:rate=1.0")


def test_checker_rejects_unknown_names():
    with pytest.raises(ValueError):
        InvariantChecker(names=("bogus",))
    assert set(InvariantChecker().names) == set(ENGINE_INVARIANTS)


def test_scenario_config_carries_harness_fields():
    config = tiny_config()
    assert not config.check_invariants
    replayed = dataclasses.replace(config, check_invariants=True)
    assert replayed.check_invariants


def test_fault_spec_window():
    spec = FaultSpec.parse("drop_transfer:rate=1.0:from_epoch=10:to_epoch=20")
    assert not spec.in_window(9)
    assert spec.in_window(10)
    assert spec.in_window(20)
    assert not spec.in_window(21)
