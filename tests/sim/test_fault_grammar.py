"""The FaultPlan one-line grammar, including the process/socket kinds.

PR-level contract: every chaos clause the resilience harness accepts
(``kill``/``pause``/``partition``/``delay``/``drop``) is ordinary
FaultPlan grammar — parseable, round-trippable through ``to_string``,
and rejected loudly when malformed.  ``kill`` is the process-level
spelling of ``crash`` and the epoch engine treats them identically.
"""

import pytest

from repro.sim.faults import FaultInjector, FaultSpec


ROUND_TRIPS = [
    "kill:epoch=3:count=7",
    "kill:epoch=2:node=5",
    "pause:epoch=4:count=2:resume=6",
    "partition:epoch=5:heal=8",
    "partition:epoch=5:groups=3:heal=9",
    "delay:from_epoch=2:to_epoch=6:seconds=0.25",
    "drop:from_epoch=1:to_epoch=4:rate=0.3",
    # Composite plan: the acceptance scenario from the CI smoke job.
    "kill:epoch=3:count=7;partition:epoch=5:heal=8",
]


@pytest.mark.parametrize("spec_string", ROUND_TRIPS)
def test_new_kinds_round_trip(spec_string):
    injector = FaultInjector.from_spec(spec_string, base_seed=7)
    assert injector is not None
    assert injector.to_string() == spec_string
    # And the round-tripped string parses back to equal specs.
    again = FaultInjector.from_spec(injector.to_string(), base_seed=7)
    assert [s.kind for s in again.specs] == [s.kind for s in injector.specs]
    assert [s.params for s in again.specs] == [s.params for s in injector.specs]


def test_values_are_typed():
    spec = FaultSpec.parse("delay:from_epoch=2:seconds=0.25:label=slow")
    assert spec.params == {"from_epoch": 2, "seconds": 0.25, "label": "slow"}
    assert isinstance(spec.get("from_epoch"), int)
    assert isinstance(spec.get("seconds"), float)


def test_unknown_kind_rejected():
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultSpec.parse("explode:epoch=1")


def test_malformed_parameter_rejected():
    with pytest.raises(ValueError, match="malformed fault parameter"):
        FaultSpec.parse("kill:epoch")


def test_kill_is_crash_alias_in_epoch_engine():
    """A ``kill`` clause takes nodes down in the simulator exactly like
    ``crash`` — same victims under the same base seed and index."""
    from repro.graphs.datasets import generate_dataset
    from repro.sim.engine import SoupSimulation
    from repro.sim.scenario import ScenarioConfig

    crashed = {}
    for kind in ("crash", "kill"):
        config = ScenarioConfig(
            dataset="facebook", scale=0.004, n_days=2, seed=11,
            faults=f"{kind}:epoch=10:count=3",
        )
        graph = generate_dataset("facebook", scale=0.004, seed=11)
        sim = SoupSimulation(graph, config)
        sim.run()
        crashed[kind] = sim.faults.crashed_nodes
    assert crashed["crash"] == crashed["kill"]
    assert len(crashed["kill"]) == 3
