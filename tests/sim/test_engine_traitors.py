"""Engine tests for the traitor population and pending placements."""

import numpy as np
import pytest

from repro.graphs.datasets import generate_dataset
from repro.sim.engine import SoupSimulation
from repro.sim.scenario import ScenarioConfig


def build(**overrides):
    base = dict(dataset="epinions", scale=0.005, n_days=6, seed=3)
    base.update(overrides)
    config = ScenarioConfig(**base)
    graph = generate_dataset(config.dataset, config.scale, config.seed)
    return SoupSimulation(graph, config), config


class TestTraitors:
    def test_traitor_population_created(self):
        sim, config = build(traitor_fraction=0.05, betrayal_day=3)
        assert sim.n_traitors == round(sim.n_base * 0.05)
        traitors = [n for n in sim.nodes if n.is_traitor]
        assert len(traitors) == sim.n_traitors
        # Traitors are neither sybils nor altruists.
        assert all(not n.is_sybil and not n.is_altruist for n in traitors)

    def test_traitors_online_until_betrayal_then_gone(self):
        sim, config = build(traitor_fraction=0.05, betrayal_day=3)
        betrayal = 3 * config.epochs_per_day
        for node in sim.nodes:
            if node.is_traitor:
                assert sim.online_matrix[node.node_id, :betrayal].all()
                assert not sim.online_matrix[node.node_id, betrayal:].any()

    def test_traitors_attract_replicas_before_betrayal(self):
        sim, config = build(traitor_fraction=0.05, betrayal_day=5, n_days=5)
        sim.run()
        traitor_ids = [n.node_id for n in sim.nodes if n.is_traitor]
        attracted = sum(sim.nodes[t].store.replica_count() for t in traitor_ids)
        assert attracted > 0

    def test_traitors_excluded_from_benign_metrics(self):
        sim, config = build(traitor_fraction=0.1)
        mask = sim._joined_benign_mask()
        for node in sim.nodes:
            if node.is_traitor:
                assert not mask[node.node_id]

    def test_availability_recovers_after_betrayal(self):
        """Experience aging pushes dead traitors out of the rankings; the
        pace depends on how many friends report failures, so the denser
        Facebook graph is used here (see the traitor bench for the full
        recovery comparison)."""
        sim, config = build(
            dataset="facebook",
            traitor_fraction=0.05,
            betrayal_day=3,
            n_days=9,
            scale=0.008,
        )
        result = sim.run()
        epoch = 3 * config.epochs_per_day
        before = result.availability[epoch - 24 : epoch].mean()
        recovered = result.availability[-24:].mean()
        assert recovered > before - 0.05
        # And the betrayed reputation does decay: fewer benign nodes remain
        # bound to a traitor than at the moment of betrayal (when nearly
        # everyone who selected one was).
        traitor_ids = {n.node_id for n in sim.nodes if n.is_traitor}
        benign = [n for n in sim.nodes if not n.is_traitor and not n.is_sybil]
        bound = sum(
            1
            for node in benign
            if any(m in traitor_ids for m in node.announced_mirrors)
        )
        assert bound < 0.6 * len(benign)


class TestReachabilityAndPendingPlacements:
    def test_new_replicas_only_at_reachable_mirrors(self):
        sim, config = build()
        result = sim.run()
        # Invariant maintained throughout: locations match stores.
        for mirror_id, owners in sim.replica_locations.items():
            store = sim.nodes[mirror_id].store
            assert set(store.stored_owners()) == owners

    def test_validation_rejects_bad_traitor_fraction(self):
        with pytest.raises(ValueError):
            ScenarioConfig(traitor_fraction=1.0)
