"""End-to-end tests for the engine's reliability & proactive-repair layer.

The failure detector + repair loop (``ScenarioConfig.repair``) must (a)
leave the default behaviour byte-for-byte untouched when disabled, (b)
detect and replace mirrors killed by the PR-1 fault schedules, and (c)
turn the dropped-transfer fault — which trips the invariant checker when
repair is off — into retries/rollbacks that keep the run green.
"""

import numpy as np

from repro.graphs.datasets import generate_dataset
from repro.sim.engine import SoupSimulation, run_scenario
from repro.sim.scenario import ScenarioConfig
from repro.testing import expect_violation, run_checked


def tiny_config(**overrides):
    base = dict(dataset="epinions", scale=0.004, n_days=4, seed=3)
    base.update(overrides)
    return ScenarioConfig(**base)


# --- repair off: nothing changes ------------------------------------------


def test_reliability_metrics_absent_when_repair_off():
    result = run_scenario(tiny_config())
    assert result.reliability is None


def test_repair_flag_off_reproduces_baseline_exactly():
    """The reliability plumbing must not perturb the RNG stream or the
    placement logic of the paper's base experiments."""
    base = run_scenario(tiny_config())
    off = run_scenario(tiny_config(repair=False))
    assert np.array_equal(base.availability, off.availability)
    assert np.array_equal(base.replica_overhead, off.replica_overhead)


# --- crash schedule: detect, repair, stay consistent ----------------------


def test_crash_repair_detects_and_replaces_mirrors():
    result = run_checked(
        tiny_config(repair=True, faults="crash:epoch=48:count=5")
    )
    rel = result.reliability
    assert rel is not None
    assert rel.deaths_declared >= 1
    assert rel.repairs_triggered >= 1
    assert rel.repair_replacements >= 1


def test_crashed_mirrors_evicted_from_announced_sets():
    config = tiny_config(repair=True, faults="crash:epoch=48:count=5")
    graph = generate_dataset(config.dataset, config.scale, config.seed)
    sim = SoupSimulation(graph, config)
    sim.run()
    crashed = set(sim.faults.crashed_nodes)
    assert crashed
    for node in sim.nodes:
        if node.is_sybil or node.departed:
            continue
        assert not (set(node.announced_mirrors) & crashed)


def test_repair_latency_measured_in_epochs():
    config = tiny_config(repair=True, faults="crash:epoch=48:count=5")
    result = run_checked(config)
    rel = result.reliability
    # Silent (offline) mirrors need repair_suspicion_epochs of evidence;
    # every recorded latency is bounded by the remaining run length.
    horizon = config.n_epochs - 48
    assert all(0 <= latency <= horizon for latency in rel.repair_latency_epochs)


# --- dropped transfers: retries and clean rollback ------------------------


def test_dropped_transfer_violates_without_repair():
    """The PR-1 behaviour the CI fault-injection job pins down: with the
    reliability layer off, a 100 % transfer-drop schedule leaves stale
    announcements and trips the checker."""
    expect_violation(
        tiny_config(seed=3, n_days=6, faults="drop_transfer:rate=1.0:from_epoch=24"),
        invariant="announced-mirrors-stored",
    )


def test_repair_absorbs_total_transfer_loss():
    """With repair on, a push that fails every attempt is rolled back
    instead of being announced — the same schedule stays green."""
    result = run_checked(
        tiny_config(
            seed=3, n_days=6, repair=True,
            faults="drop_transfer:rate=1.0:from_epoch=24",
        )
    )
    rel = result.reliability
    assert rel.transfer_retries >= 1
    assert rel.transfer_giveups >= 1


def test_repair_retries_recover_partial_transfer_loss():
    """At 50 % drop rate, per-attempt re-draws let most pushes land."""
    result = run_checked(
        tiny_config(
            seed=3, n_days=6, repair=True,
            faults="drop_transfer:rate=0.5:from_epoch=24",
        )
    )
    rel = result.reliability
    assert rel.transfer_retries >= 1
    # Retries succeed far more often than they exhaust.
    assert rel.transfer_giveups < rel.transfer_retries


# --- determinism ----------------------------------------------------------


def test_repair_run_is_deterministic():
    config = tiny_config(
        repair=True,
        faults="crash:epoch=48:count=5;drop_transfer:rate=0.5:from_epoch=24",
    )
    first = run_scenario(config)
    second = run_scenario(config)
    assert np.array_equal(first.availability, second.availability)
    for name in (
        "transfer_retries",
        "transfer_giveups",
        "deaths_declared",
        "revivals",
        "repairs_triggered",
        "repair_replacements",
        "partial_set_epochs",
    ):
        assert getattr(first.reliability, name) == getattr(second.reliability, name)
    assert first.reliability.repair_latency_epochs == second.reliability.repair_latency_epochs
