"""Tests for the replication-simulator engine.

These run small, fast scenarios (tiny graphs, few days) and assert the
protocol-level invariants; the benchmark modules assert the paper-level
numbers at larger scale.
"""

import numpy as np
import pytest

from repro.graphs.datasets import generate_dataset
from repro.sim.engine import SoupSimulation, run_scenario
from repro.sim.scenario import OnlineDistribution, ScenarioConfig


def tiny_config(**overrides):
    base = dict(dataset="epinions", scale=0.004, n_days=4, seed=3)
    base.update(overrides)
    return ScenarioConfig(**base)


@pytest.fixture(scope="module")
def base_result():
    return run_scenario(tiny_config())


def test_availability_series_shape(base_result):
    config = tiny_config()
    assert len(base_result.availability) == config.n_epochs
    assert np.all((0 <= base_result.availability) & (base_result.availability <= 1))


def test_availability_improves_over_time(base_result):
    early = base_result.availability[:12].mean()
    late = base_result.availability[-24:].mean()
    assert late > early


def test_replica_overhead_positive_and_bounded(base_result):
    assert base_result.replica_overhead[-1] > 1
    assert base_result.replica_overhead.max() <= 31  # max_mirrors + exploration


def test_replica_locations_consistent_with_stores():
    config = tiny_config()
    graph = generate_dataset(config.dataset, config.scale, config.seed)
    sim = SoupSimulation(graph, config)
    sim.run()
    for mirror_id, owners in sim.replica_locations.items():
        store = sim.nodes[mirror_id].store
        for owner in owners:
            assert store.stores_for(owner)
        for owner in store.stored_owners():
            assert owner in owners


def test_mirror_sets_exclude_self():
    config = tiny_config()
    graph = generate_dataset(config.dataset, config.scale, config.seed)
    sim = SoupSimulation(graph, config)
    sim.run()
    for node in sim.nodes:
        assert node.node_id not in node.selected_mirrors
        assert node.node_id not in node.announced_mirrors


def test_announced_mirrors_mostly_store_the_data():
    """Announced mirrors held the replica at publication time; a small
    fraction may have evicted it since (the owner discovers this through
    failed fetches and reselects next round)."""
    config = tiny_config()
    graph = generate_dataset(config.dataset, config.scale, config.seed)
    sim = SoupSimulation(graph, config)
    sim.run()
    stored = 0
    total = 0
    for node in sim.nodes:
        if node.is_sybil:
            continue
        for mirror in node.announced_mirrors:
            total += 1
            if node.node_id in sim.replica_locations[mirror]:
                stored += 1
    assert total > 0
    assert stored / total > 0.9


def test_capacity_never_exceeded():
    config = tiny_config()
    graph = generate_dataset(config.dataset, config.scale, config.seed)
    sim = SoupSimulation(graph, config)
    sim.run()
    for node in sim.nodes:
        assert node.store.used_profiles <= node.store.capacity_profiles + 1e-9


def test_cohort_series_present(base_result):
    for name in ("top_online", "bottom_online", "top_friends", "bottom_friends"):
        assert name in base_result.cohort_availability
        series = base_result.cohort_availability[name]
        assert len(series) == len(base_result.availability)


def test_snapshots_taken_at_requested_days():
    result = run_scenario(tiny_config(cdf_snapshot_days=(1, 2)))
    assert set(result.stored_profiles_snapshots) == {1, 2}
    counts = result.stored_profiles_snapshots[2]
    assert all(c >= 0 for c in counts)


def test_determinism_per_seed():
    a = run_scenario(tiny_config(seed=11))
    b = run_scenario(tiny_config(seed=11))
    assert np.array_equal(a.availability, b.availability)
    assert np.array_equal(a.replica_overhead, b.replica_overhead)


def test_seeds_differ():
    a = run_scenario(tiny_config(seed=11))
    b = run_scenario(tiny_config(seed=12))
    assert not np.array_equal(a.availability, b.availability)


class TestDeparture:
    def test_departed_nodes_drop_from_metrics(self):
        config = tiny_config(departure_fraction=0.05, departure_day=2, n_days=4)
        graph = generate_dataset(config.dataset, config.scale, config.seed)
        sim = SoupSimulation(graph, config)
        result = sim.run()
        assert len(sim.departing_ids) >= 1
        for node_id in sim.departing_ids:
            assert sim.nodes[node_id].departed
            assert not sim.online_matrix[node_id, sim.departure_epoch :].any()

    def test_availability_recovers_after_departure(self):
        config = tiny_config(
            departure_fraction=0.05, departure_day=3, n_days=8, scale=0.006
        )
        result = run_scenario(config)
        departure_epoch = 3 * config.epochs_per_day
        dip = result.availability[departure_epoch : departure_epoch + 12].mean()
        recovered = result.availability[-12:].mean()
        assert recovered >= dip - 0.02


class TestAltruism:
    def test_altruists_join_later_and_always_online(self):
        config = tiny_config(altruist_fraction=0.02, altruist_join_day=2, n_days=4)
        graph = generate_dataset(config.dataset, config.scale, config.seed)
        sim = SoupSimulation(graph, config)
        assert sim.n_altruists >= 1
        sim.run()
        for node in sim.nodes:
            if node.is_altruist:
                join = int(2 * config.epochs_per_day)
                assert sim.online_matrix[node.node_id, join:].all()
                assert not sim.online_matrix[node.node_id, :join].any()

    def test_altruists_attract_replicas(self):
        config = tiny_config(
            altruist_fraction=0.02, altruist_join_day=1, n_days=6, scale=0.006
        )
        graph = generate_dataset(config.dataset, config.scale, config.seed)
        sim = SoupSimulation(graph, config)
        sim.run()
        altruist_ids = [n.node_id for n in sim.nodes if n.is_altruist]
        stored = sum(sim.nodes[a].store.replica_count() for a in altruist_ids)
        assert stored > 0


class TestAttacksInEngine:
    def test_slander_marks_attackers(self):
        config = tiny_config(slander_fraction=0.2)
        graph = generate_dataset(config.dataset, config.scale, config.seed)
        sim = SoupSimulation(graph, config)
        attackers = [n for n in sim.nodes if n.is_slanderer]
        assert len(attackers) == round(sim.n_base * 0.2)
        sim.run()

    def test_slander_degrades_but_does_not_destroy(self):
        clean = run_scenario(tiny_config(n_days=6, scale=0.006))
        slandered = run_scenario(
            tiny_config(n_days=6, scale=0.006, slander_fraction=0.5)
        )
        # Availability under attack stays within striking distance.
        assert (
            slandered.steady_state_availability()
            > clean.steady_state_availability() - 0.25
        )

    def test_sybils_excluded_from_benign_metrics(self):
        config = tiny_config(sybil_fraction=0.3)
        graph = generate_dataset(config.dataset, config.scale, config.seed)
        sim = SoupSimulation(graph, config)
        assert sim.n_sybils == round(sim.n_base * 0.3)
        benign = set(sim.benign_ids.tolist())
        for node in sim.nodes:
            assert (node.node_id in benign) == (not node.is_sybil)
        sim.run()

    def test_flooding_triggers_blacklisting(self):
        config = tiny_config(
            sybil_fraction=0.3, sybil_flood_requests=30, n_days=6, scale=0.006
        )
        result = run_scenario(config)
        assert result.blacklisted_owner_count > 0
