"""Tests for scenario configuration."""

import numpy as np
import pytest

from repro.sim.scenario import (
    PEERSON_BUCKETS,
    OnlineDistribution,
    ScenarioConfig,
    sample_distribution,
)


def test_defaults_reproduce_base_experiment():
    config = ScenarioConfig()
    assert config.dataset == "facebook"
    assert config.online_distribution is OnlineDistribution.POWER_LAW
    assert config.n_epochs == config.n_days * config.epochs_per_day


def test_round_period_epochs():
    config = ScenarioConfig(round_period_days=0.5, epochs_per_day=24)
    assert config.round_period_epochs == 12


def test_with_overrides_copies():
    base = ScenarioConfig()
    swept = base.with_overrides(slander_fraction=0.5)
    assert swept.slander_fraction == 0.5
    assert base.slander_fraction == 0.0
    assert swept.dataset == base.dataset


@pytest.mark.parametrize(
    "field,value",
    [
        ("scale", 0.0),
        ("scale", -0.5),
        ("n_days", 0),
        ("n_days", -3),
        ("epochs_per_day", 0),
        ("altruist_fraction", 1.0),
        ("departure_fraction", -0.1),
        ("slander_fraction", 0.95),
        ("sybil_fraction", 1.5),
        ("friend_contact_probability", 2.0),
    ],
)
def test_validation(field, value):
    with pytest.raises(ValueError):
        ScenarioConfig(**{field: value})


def test_validation_messages_name_field_and_value():
    with pytest.raises(ValueError, match="scale must be positive, got 0"):
        ScenarioConfig(scale=0)
    with pytest.raises(ValueError, match="n_days must be positive, got -1"):
        ScenarioConfig(n_days=-1)
    with pytest.raises(ValueError, match="epochs_per_day must be positive"):
        ScenarioConfig(epochs_per_day=-24)
    with pytest.raises(ValueError, match="got 1.5"):
        ScenarioConfig(sybil_fraction=1.5)


def test_validate_callable_after_mutation():
    config = ScenarioConfig()
    config.validate()  # explicit re-check of a valid config is a no-op
    config.scale = -1.0
    with pytest.raises(ValueError, match="scale"):
        config.validate()


class TestDistributions:
    def test_power_law(self):
        rng = np.random.default_rng(0)
        p = sample_distribution(OnlineDistribution.POWER_LAW, 10_000, rng)
        assert np.mean(p < 0.2) == pytest.approx(0.6, abs=0.05)

    def test_uniform_03(self):
        rng = np.random.default_rng(0)
        p = sample_distribution(OnlineDistribution.UNIFORM_03, 100, rng)
        assert np.all(p == 0.3)

    def test_peerson_buckets(self):
        rng = np.random.default_rng(0)
        p = sample_distribution(OnlineDistribution.PEERSON, 50_000, rng)
        for fraction, value in PEERSON_BUCKETS:
            assert np.mean(np.isclose(p, value)) == pytest.approx(fraction, abs=0.02)

    def test_peerson_buckets_cover_population(self):
        assert sum(f for f, _ in PEERSON_BUCKETS) == pytest.approx(1.0)
