"""Tests for attack models."""

import random

from repro.sim.attacks import FloodingAttack, SlanderAttack


class TestSlander:
    def test_forged_reports_maximal_and_false(self):
        attack = SlanderAttack(attacker_ids={1, 2})
        reports = attack.forge_reports(1, victim_mirrors=[10, 11], o_max=3)
        assert len(reports) == 2
        assert all(r.observations == 3 for r in reports)
        assert all(r.availability == 0.0 for r in reports)
        assert all(r.reporter == 1 for r in reports)

    def test_forged_recommendations_praise_accomplices(self):
        attack = SlanderAttack(attacker_ids={1, 2, 3})
        recs = attack.forge_recommendations(1, population=range(100), rng=random.Random(0))
        assert all(r.quality == 1.0 for r in recs)
        assert all(r.mirror in {2, 3} for r in recs)

    def test_lone_attacker_recommends_from_population(self):
        attack = SlanderAttack(attacker_ids={1})
        recs = attack.forge_recommendations(
            1, population=list(range(10)), rng=random.Random(0), count=3
        )
        assert len(recs) == 3

    def test_is_attacker(self):
        attack = SlanderAttack(attacker_ids={5})
        assert attack.is_attacker(5)
        assert not attack.is_attacker(6)


class TestFlooding:
    def test_flood_targets_exclude_sybils(self):
        attack = FloodingAttack(sybil_ids={90, 91}, flood_requests=5)
        targets = attack.flood_targets(90, population=list(range(95)), rng=random.Random(0))
        assert len(targets) == 5
        assert all(t not in attack.sybil_ids for t in targets)

    def test_flood_targets_capped_by_population(self):
        attack = FloodingAttack(sybil_ids={9}, flood_requests=100)
        targets = attack.flood_targets(9, population=list(range(10)), rng=random.Random(0))
        assert len(targets) == 9

    def test_announced_set_undersized(self):
        attack = FloodingAttack(sybil_ids={1}, announced_mirrors=3)
        accepted = list(range(20))
        announced = attack.announced_set(accepted, random.Random(0))
        assert len(announced) == 3
        assert set(announced) <= set(accepted)

    def test_announced_set_small_acceptance_unchanged(self):
        attack = FloodingAttack(sybil_ids={1}, announced_mirrors=5)
        assert attack.announced_set([1, 2], random.Random(0)) == [1, 2]
