"""Tests for simulation metrics."""

import numpy as np
import pytest

from repro.sim.metrics import (
    ReliabilityMetrics,
    SimulationResult,
    cdf_points,
    percentile_of,
)


class TestCdf:
    def test_empty(self):
        assert cdf_points([]) == []

    def test_simple(self):
        points = cdf_points([1, 2, 2, 4])
        assert points == [(1.0, 0.25), (2.0, 0.75), (4.0, 1.0)]

    def test_monotone(self):
        points = cdf_points(np.random.default_rng(0).integers(0, 50, 200))
        fractions = [f for _, f in points]
        assert fractions == sorted(fractions)
        assert fractions[-1] == 1.0


def test_percentile_of():
    assert percentile_of([1, 2, 3, 4, 5], 0.5) == 3.0
    assert percentile_of([], 0.5) == 0.0


@pytest.fixture()
def result():
    r = SimulationResult(n_nodes=100, n_epochs=48, epochs_per_day=24)
    r.availability = np.linspace(0.5, 1.0, 48)
    r.replica_overhead = np.full(48, 7.0)
    return r


def test_day_index_clamped(result):
    assert result.day_index(1) == 23
    assert result.day_index(100) == 47


def test_day_index_clamped_below(result):
    # Regression: day=0 used to compute -1 and wrap to the *last* epoch.
    assert result.day_index(0) == 0
    assert result.day_index(0.01) == 0  # shorter than one epoch


def test_availability_at_day_zero_reads_first_epoch(result):
    assert result.availability_at_day(0) == pytest.approx(result.availability[0])
    assert result.replicas_at_day(0) == pytest.approx(result.replica_overhead[0])


def test_availability_at_day(result):
    assert result.availability_at_day(2) == pytest.approx(1.0)


def test_daily_series_shape(result):
    assert len(result.daily_availability()) == 2
    assert len(result.daily_replica_overhead()) == 2
    assert result.daily_replica_overhead()[0] == 7.0


def test_steady_state_skips_transient(result):
    assert result.steady_state_availability(skip_days=1) == pytest.approx(
        result.availability[24:].mean()
    )


def test_summary_keys(result):
    summary = result.summary()
    for key in (
        "availability_day1",
        "availability_steady",
        "replicas_steady",
        "replicas_peak",
        "top_half_replica_share",
        "final_drop_rate",
    ):
        assert key in summary


def test_summary_with_drop_rates(result):
    result.drop_rate_by_round = [0.1, 0.05]
    assert result.summary()["final_drop_rate"] == 0.05


def test_reliability_summary_exports_circuit_transitions():
    metrics = ReliabilityMetrics(
        circuit_transitions={"closed->open": 3, "open->half-open": 2}
    )
    summary = metrics.summary()
    assert summary["circuit_transitions_total"] == 5.0
    assert summary["circuit_closed->open"] == 3.0
    assert summary["circuit_open->half-open"] == 2.0


def test_reliability_summary_without_transitions():
    summary = ReliabilityMetrics().summary()
    assert summary["circuit_transitions_total"] == 0.0
    assert not any(key.startswith("circuit_closed") for key in summary)


def test_result_summary_includes_reliability(result):
    result.reliability = ReliabilityMetrics(circuit_transitions={"closed->open": 1})
    assert result.summary()["circuit_transitions_total"] == 1.0


def test_metrics_fields_default_empty(result):
    assert result.metrics_by_epoch == []
    assert result.metrics is None


@pytest.fixture()
def rich_result(result):
    """A result exercising every serialized field."""
    result.stored_profiles_snapshots = {1: [3, 4, 4], 2: [5, 5, 6]}
    result.cohort_availability = {
        "top_online": np.linspace(0.8, 1.0, 48),
        "bottom_online": np.linspace(0.4, 0.9, 48),
    }
    result.drop_rate_by_round = [0.2, 0.1, 0.05]
    result.mirror_churn_by_round = [1.5, 0.75]
    result.top_half_replica_share = 0.61
    result.blacklisted_owner_count = 3
    result.reliability = ReliabilityMetrics(
        transfer_retries=4,
        deaths_declared=2,
        repair_latency_epochs=[1, 3],
        circuit_transitions={"closed->open": 1},
    )
    result.metrics_by_epoch = [{"epochs": 1.0}, {"epochs": 2.0}]
    result.metrics = {"epochs": {"count": 2.0}}
    result.arch = {
        "cache": {"hit_rate": 0.4, "hits": 12.0},
        "dht": {"mean_lookup_hops": 2.5},
    }
    return result


class TestArchMetrics:
    def test_arch_round_trips(self, rich_result):
        restored = SimulationResult.from_json(rich_result.to_json())
        assert restored.arch == rich_result.arch

    def test_arch_none_round_trips(self, result):
        restored = SimulationResult.from_json(result.to_json())
        assert restored.arch is None

    def test_summary_flattens_arch_groups(self, rich_result):
        summary = rich_result.summary()
        assert summary["arch.cache.hit_rate"] == pytest.approx(0.4)
        assert summary["arch.dht.mean_lookup_hops"] == pytest.approx(2.5)

    def test_summary_without_arch_has_no_arch_keys(self, result):
        assert not any(key.startswith("arch.") for key in result.summary())


class TestJsonRoundTrip:
    def test_round_trip_is_lossless(self, rich_result):
        restored = SimulationResult.from_json(rich_result.to_json())
        assert restored.n_nodes == rich_result.n_nodes
        assert restored.n_epochs == rich_result.n_epochs
        assert restored.epochs_per_day == rich_result.epochs_per_day
        np.testing.assert_array_equal(restored.availability, rich_result.availability)
        np.testing.assert_array_equal(
            restored.replica_overhead, rich_result.replica_overhead
        )
        # JSON object keys are strings; day keys must come back as ints.
        assert restored.stored_profiles_snapshots == {1: [3, 4, 4], 2: [5, 5, 6]}
        assert set(restored.cohort_availability) == set(rich_result.cohort_availability)
        for cohort, series in rich_result.cohort_availability.items():
            np.testing.assert_array_equal(restored.cohort_availability[cohort], series)
        assert restored.drop_rate_by_round == rich_result.drop_rate_by_round
        assert restored.mirror_churn_by_round == rich_result.mirror_churn_by_round
        assert restored.top_half_replica_share == rich_result.top_half_replica_share
        assert restored.blacklisted_owner_count == rich_result.blacklisted_owner_count
        assert restored.reliability == rich_result.reliability
        assert restored.metrics_by_epoch == rich_result.metrics_by_epoch
        assert restored.metrics == rich_result.metrics

    def test_round_trip_stable_bytes(self, rich_result):
        # Serialize -> restore -> serialize again: identical bytes.  This
        # is what makes sweep artifacts re-runnable and diffable.
        once = rich_result.to_json()
        twice = SimulationResult.from_json(once).to_json()
        assert once == twice

    def test_summary_survives_round_trip(self, rich_result):
        restored = SimulationResult.from_json(rich_result.to_json())
        assert restored.summary() == rich_result.summary()

    def test_reliability_none_round_trips(self, result):
        restored = SimulationResult.from_json(result.to_json())
        assert restored.reliability is None

    def test_derived_keys_optional(self, result):
        payload = result.to_json_dict()
        assert "steady_availability" not in payload
        derived = result.to_json_dict(include_derived=True)
        assert derived["steady_availability"] == pytest.approx(
            result.steady_state_availability()
        )
        assert len(derived["daily_availability"]) == 2
        # Derived keys are presentation-only; from_json_dict ignores them.
        restored = SimulationResult.from_json_dict(derived)
        np.testing.assert_array_equal(restored.availability, result.availability)

    def test_foreign_schema_rejected(self, result):
        payload = result.to_json_dict()
        payload["schema"] = "soup-result/v99"
        with pytest.raises(ValueError, match="unsupported result schema"):
            SimulationResult.from_json_dict(payload)
