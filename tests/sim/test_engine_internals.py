"""White-box tests of engine internals: exchanges, recommendations, ties."""

import numpy as np
import pytest

from repro.graphs.datasets import generate_dataset
from repro.sim.engine import SoupSimulation
from repro.sim.scenario import ScenarioConfig


def build(**overrides):
    base = dict(dataset="facebook", scale=0.004, n_days=4, seed=7)
    base.update(overrides)
    config = ScenarioConfig(**base)
    graph = generate_dataset(config.dataset, config.scale, config.seed)
    return SoupSimulation(graph, config), config


class TestExchanges:
    def test_reports_flow_between_friends(self):
        sim, config = build()
        sim.run()
        # Someone must have ingested reports (regular mode reached).
        assert any(node.has_experience for node in sim.nodes)

    def test_slander_reports_are_forged(self):
        sim, config = build(slander_fraction=0.3)
        attacker = next(n for n in sim.nodes if n.is_slanderer)
        victim_id = attacker.friends[0] if attacker.friends else None
        if victim_id is None:
            pytest.skip("attacker without friends in this sample")
        victim = sim.nodes[victim_id]
        victim.joined = True
        victim.announced_mirrors = [1, 2, 3]
        attacker.joined = True
        sim._exchange_experience(attacker)
        forged = [r for r in victim.pending_reports if r.reporter == attacker.node_id]
        assert forged
        assert all(r.availability == 0.0 for r in forged)
        assert all(r.observations == sim.soup.o_max for r in forged)

    def test_tie_weights_applied_to_reports(self):
        sim, config = build(use_tie_strength=True)
        assert sim.ties is not None
        node = next(n for n in sim.nodes if n.friends)
        friend = sim.nodes[node.friends[0]]
        node.joined = friend.joined = True
        es = node.experience_set_for(friend.node_id)
        es.observe(5, True)
        sim._exchange_experience(node)
        reports = [r for r in friend.pending_reports if r.reporter == node.node_id]
        assert reports
        strength = sim.ties.strength(friend.node_id, node.node_id)
        assert reports[0].weight == pytest.approx(max(0.1, strength))

    def test_tie_model_covers_all_edges(self):
        sim, config = build(use_tie_strength=True)
        for node in sim.nodes:
            for friend in node.friends:
                assert sim.ties.strength(node.node_id, friend) > 0.0


class TestRecommendations:
    def test_contacts_harvest_recommendations_in_bootstrap_mode(self):
        sim, config = build()
        sim.run()
        received = sum(
            node.bootstrap.recommendation_count
            for node in sim.nodes
            if not node.is_sybil
        )
        assert received > 0

    def test_overload_capacity_limits_served_requests(self):
        sim, config = build(mirror_request_capacity=1)
        node = sim.nodes[0]
        friend_id = node.friends[0]
        friend = sim.nodes[friend_id]
        node.joined = friend.joined = True
        mirror_id = 5
        friend.announced_mirrors = [mirror_id]
        sim.replica_locations[mirror_id].add(friend_id)
        sim.online_matrix[mirror_id, 0] = True
        sim._served_this_epoch = {}
        sim._request_profile(node, friend, epoch=0)
        sim._request_profile(node, friend, epoch=0)
        record = node.experience_set_for(friend_id).record_for(mirror_id)
        assert record.requests == 2
        assert record.successes == 1  # second request denied: overloaded


class TestMeasurement:
    def test_availability_flags_use_replica_locations(self):
        sim, config = build()
        online = np.zeros(sim.n_total, dtype=bool)
        owner, mirror = 0, 1
        sim.replica_locations[mirror].add(owner)
        sim._rebuild_pairs()
        online[mirror] = True
        flags = sim._availability_flags(online)
        assert flags[owner]
        online[mirror] = False
        flags = sim._availability_flags(online)
        assert not flags[owner]

    def test_top_half_share_range(self):
        sim, config = build()
        sim.run()
        assert 0.0 <= sim.result.top_half_replica_share <= 1.0
