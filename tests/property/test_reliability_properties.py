"""Property-based tests for the reliability layer.

The central at-most-once claim: whatever the pattern of outages — ack
lost in flight, receiver dark at send time, sender crashing mid-exchange
— a reliably-sent payload is *applied* (delivered to the inner handler)
at most once.  Retries may duplicate envelopes on the wire; the dedup
layer must absorb every copy.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.events import EventLoop
from repro.network.reliability import ReliableEndpoint, RetryPolicy
from repro.network.simnet import LinkSpec, SimNetwork

LINK = LinkSpec(latency_s=0.1, upstream_bytes_per_s=1e9, downstream_bytes_per_s=1e9)

#: An outage blip: (node, start offset s, duration s).
blips_strategy = st.lists(
    st.tuples(
        st.sampled_from([1, 2]),
        st.floats(0.0, 20.0, allow_nan=False, allow_infinity=False),
        st.floats(0.05, 5.0, allow_nan=False, allow_infinity=False),
    ),
    max_size=6,
)


@given(
    seed=st.integers(0, 1000),
    n_messages=st.integers(1, 5),
    blips=blips_strategy,
)
@settings(max_examples=40, deadline=None)
def test_reliable_delivery_never_applies_twice(seed, n_messages, blips):
    loop = EventLoop()
    net = SimNetwork(loop)
    applied = []
    sender = ReliableEndpoint(1, net, inner_handler=lambda s, m: None, seed=seed)
    receiver = ReliableEndpoint(
        2, net, inner_handler=lambda s, m: applied.append(m), seed=seed + 1
    )
    for node_id, endpoint in ((1, sender), (2, receiver)):
        net.register(
            node_id,
            endpoint.handle_message,
            link=LINK,
            on_failure=endpoint.handle_network_failure,
        )
    # Outage schedule: nodes wink out and return at arbitrary times, so
    # envelopes and acks are lost at every stage of the exchange.
    for node, start, duration in blips:
        loop.schedule(start, lambda n=node: net.set_online(n, False))
        loop.schedule(start + duration, lambda n=node: net.set_online(n, True))
    acked = []
    for index in range(n_messages):
        loop.schedule(
            index * 0.5,
            lambda i=index: sender.send_reliable(
                2, f"update-{i}", 200, on_ack=lambda d, p: acked.append(p)
            ),
        )
    loop.run_until(300.0)

    # At-most-once application, regardless of wire-level duplication.
    assert len(applied) == len(set(applied))
    assert set(applied) <= {f"update-{i}" for i in range(n_messages)}
    # An acked payload was applied exactly once (acks never lie).
    assert set(acked) <= set(applied)
    # Every send resolved: acked or given up, nothing leaks.
    assert sender.pending_count() == 0


@given(
    seed=st.integers(0, 10_000),
    key=st.integers(0, 100),
    max_attempts=st.integers(2, 6),
    jitter=st.floats(0.0, 0.5, exclude_max=True),
)
@settings(max_examples=60, deadline=None)
def test_retry_schedule_pure_and_bounded(seed, key, max_attempts, jitter):
    policy = RetryPolicy(max_attempts=max_attempts, jitter_fraction=jitter)
    first = policy.schedule(seed, key)
    assert first == policy.schedule(seed, key)
    assert len(first) == max_attempts - 1
    for attempt, delay in enumerate(first, start=1):
        nominal = policy.base_delay_s * policy.multiplier ** (attempt - 1)
        assert nominal * (1 - jitter) <= delay <= nominal * (1 + jitter)
