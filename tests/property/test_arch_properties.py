"""Property tests for the pluggable architecture subsystem (repro.arch).

Every registered :class:`~repro.arch.MirrorSelectionStrategy` must honour
the K-replication contract Algorithm 1 guarantees, whatever it does to
the candidate ranking: never more than ``max_mirrors`` mirrors (plus the
one exploration node), no duplicates, and never a node from ``exclude``
— which is how the engine passes blacklisted, rejecting, and offline
nodes into selection.
"""

import random

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.arch import (
    SoupSelectionStrategy,
    architecture_names,
    create_architecture,
)
from repro.core.config import SoupConfig

node_ids = st.integers(1, 2_000)
ranks = st.floats(0.0, 1.0, allow_nan=False)
rankings = st.lists(
    st.tuples(node_ids, ranks), min_size=0, max_size=50, unique_by=lambda p: p[0]
)

#: Population size for the synthetic engine view — larger than any drawn
#: node id so strategies can index uptime/capacity arrays by node id.
_N = 2_048


class _EngineView:
    """The duck-typed slice of the engine a strategy's begin_round sees."""

    def __init__(self, uptime: np.ndarray, capacities: np.ndarray) -> None:
        self._uptime = uptime
        self.capacities = capacities

    def observed_uptime(self, epoch: int) -> np.ndarray:
        return self._uptime

    def is_electable(self, node_id: int) -> bool:
        return True


@given(
    ranking=rankings,
    owner=node_ids,
    exclude_picks=st.sets(st.integers(0, 49), max_size=10),
    pool=st.sets(st.integers(3_000, 3_500), max_size=5),
    seed=st.integers(0, 20),
    view_seed=st.integers(0, 10_000),
)
def test_every_selection_strategy_preserves_replication_invariant(
    ranking, owner, exclude_picks, pool, seed, view_seed
):
    """K-cap, no duplicates, no excluded/blacklisted/offline nodes —
    for every architecture's selection strategy, after a real election
    round over a randomized engine view."""
    config = SoupConfig()
    view_rng = np.random.default_rng(view_seed)
    view = _EngineView(
        uptime=view_rng.random(_N),
        capacities=view_rng.uniform(1.0, 100.0, _N),
    )
    exclude = {ranking[i][0] for i in exclude_picks if i < len(ranking)}
    exclude.add(owner)

    for name in architecture_names():
        strategy = create_architecture(name).selection or SoupSelectionStrategy()
        strategy.begin_round(view, 0)
        result = strategy.select(
            owner,
            ranking,
            (),
            config,
            random.Random(seed),
            exploration_pool=sorted(pool),
            exclude=exclude,
        )
        mirrors = result.mirrors
        assert len(mirrors) <= config.max_mirrors + 1, name
        assert len(set(mirrors)) == len(mirrors), name
        assert not exclude & set(mirrors), name
        assert owner not in mirrors, name


@given(ranking=rankings, seed=st.integers(0, 20))
def test_soup_strategy_is_algorithm_one_verbatim(ranking, seed):
    """The identity strategy returns exactly what select_mirrors returns
    for the same inputs and RNG stream."""
    from repro.core.selection import select_mirrors

    config = SoupConfig()
    expected = select_mirrors(
        ranking=ranking,
        friends=(),
        config=config,
        rng=random.Random(seed),
        exploration_pool=(),
        exclude=(),
    )
    actual = SoupSelectionStrategy().select(
        0, ranking, (), config, random.Random(seed)
    )
    assert actual.mirrors == expected.mirrors
    assert actual.estimated_error == expected.estimated_error
