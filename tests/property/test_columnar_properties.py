"""Property tests for the columnar hot-path twins and pooled networking.

Three contracts, each checked against randomly generated inputs:

* :func:`repro.core.columnar.update_experience_columnar` is *bit*-identical
  to the scalar Eq. (1) — same keys, same order, same float64 values —
  for both normalization modes.
* :class:`repro.core.columnar.AgedCounterColumns` replays any
  decay/add/score schedule exactly like the scalar
  ``{mirror: [requests, successes]}`` counter dict it replaces.
* The pooled-event :class:`repro.network.simnet.SimNetwork` delivers each
  message at most once and never cross-wires recycled event payloads,
  under arbitrary outage schedules.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.columnar import AgedCounterColumns, update_experience_columnar
from repro.core.experience import ExperienceReport, update_experience
from repro.network.events import EventLoop
from repro.network.simnet import LinkSpec, SimNetwork

# --- Eq. (1): columnar vs scalar -----------------------------------------

reports_strategy = st.lists(
    st.builds(
        ExperienceReport,
        mirror=st.integers(0, 7),
        observations=st.integers(0, 30),
        availability=st.floats(0.0, 1.0, allow_nan=False),
        weight=st.floats(0.0, 2.0, allow_nan=False),
    ),
    max_size=24,
)

old_values_strategy = st.dictionaries(
    st.integers(0, 7), st.floats(0.0, 1.0, allow_nan=False), max_size=8
)


@given(
    old_values=old_values_strategy,
    reports=reports_strategy,
    alpha=st.floats(0.01, 0.99, allow_nan=False),
    o_max=st.integers(1, 20),
    normalization=st.sampled_from(["by_observations", "by_cap"]),
)
@settings(max_examples=200, deadline=None)
def test_columnar_eq1_bit_identical(old_values, reports, alpha, o_max, normalization):
    scalar = update_experience(old_values, reports, alpha, o_max, normalization)
    columnar = update_experience_columnar(
        old_values, reports, alpha, o_max, normalization
    )
    # Exact comparison including iteration order: the engine serializes
    # these dicts into traces, so ordering is part of the contract.
    assert list(scalar.items()) == list(columnar.items())


# --- aged counters: packed arrays vs scalar dict --------------------------

#: One step of the estimator's life: decay, then a batch of adds.
steps_strategy = st.lists(
    st.tuples(
        st.floats(0.1, 1.0, allow_nan=False),  # retention
        st.lists(
            st.tuples(
                st.integers(0, 9),  # mirror
                st.floats(0.0, 10.0, allow_nan=False),  # weight
                st.floats(0.0, 1.0, allow_nan=False),  # availability
            ),
            max_size=12,
        ),
    ),
    max_size=8,
)


def _scalar_replay(steps, prior, prior_weight):
    counters = {}
    for retention, adds in steps:
        for counter in counters.values():
            counter[0] *= retention
            counter[1] *= retention
        for mirror, weight, availability in adds:
            counter = counters.get(mirror)
            if counter is None:
                counter = counters[mirror] = [0.0, 0.0]
            counter[0] += weight
            counter[1] += weight * availability
    emitted = []
    for mirror, (requests, successes) in counters.items():
        if requests <= 0.0:
            continue
        value = (successes + prior_weight * prior) / (requests + prior_weight)
        emitted.append((mirror, max(0.0, min(1.0, value))))
    return emitted


@given(
    steps=steps_strategy,
    prior=st.floats(0.0, 1.0, allow_nan=False),
    prior_weight=st.floats(0.1, 5.0, allow_nan=False),
)
@settings(max_examples=150, deadline=None)
def test_aged_counter_columns_match_scalar_replay(steps, prior, prior_weight):
    columns = AgedCounterColumns()
    for retention, adds in steps:
        columns.decay(retention)
        for mirror, weight, availability in adds:
            columns.add(mirror, weight, availability)
    assert list(columns.scores(prior, prior_weight)) == _scalar_replay(
        steps, prior, prior_weight
    )


# --- pooled SimNetwork: at-most-once, no payload cross-wiring -------------

LINK = LinkSpec(latency_s=0.05, upstream_bytes_per_s=1e9, downstream_bytes_per_s=1e9)

#: (sender, receiver, delay before send s) triples over a 3-node network.
sends_strategy = st.lists(
    st.tuples(
        st.integers(0, 2),
        st.integers(0, 2),
        st.floats(0.0, 5.0, allow_nan=False),
    ),
    min_size=1,
    max_size=30,
)

#: Outage blips: (node, start s, duration s).
blips_strategy = st.lists(
    st.tuples(
        st.integers(0, 2),
        st.floats(0.0, 5.0, allow_nan=False),
        st.floats(0.01, 2.0, allow_nan=False),
    ),
    max_size=8,
)


@given(sends=sends_strategy, blips=blips_strategy)
@settings(max_examples=100, deadline=None)
def test_pooled_events_deliver_at_most_once_with_intact_payloads(sends, blips):
    loop = EventLoop()
    net = SimNetwork(loop)
    delivered = []
    failed = []

    def make_handler(node_id):
        return lambda sender, message: delivered.append((node_id, message))

    for node_id in range(3):
        net.register(
            node_id,
            make_handler(node_id),
            link=LINK,
            on_failure=lambda receiver, message, reason: failed.append(
                (receiver, message, reason)
            ),
        )

    for node_id, start, duration in blips:
        loop.schedule(start, lambda n=node_id: net.set_online(n, False))
        loop.schedule(start + duration, lambda n=node_id: net.set_online(n, True))

    sent = []
    for seq, (sender, receiver, delay) in enumerate(sends):
        if receiver == sender:
            receiver = (receiver + 1) % 3
        token = ("msg", seq, sender, receiver)
        sent.append(token)

        def do_send(s=sender, r=receiver, t=token):
            net.send(s, r, t, size_bytes=256)

        loop.schedule(delay, do_send)

    loop.run_until(100.0)

    # Every send is accounted for exactly once: delivered or failed.
    assert net.messages_delivered + net.messages_failed == len(sent)
    assert len(delivered) == net.messages_delivered
    # At-most-once, and pooled-event recycling never swaps payloads:
    # each token arrives intact, at its intended receiver, at most once.
    seen = set()
    for receiver_id, message in delivered:
        assert message in sent
        assert message not in seen
        seen.add(message)
        assert message[3] == receiver_id
    for _receiver_id, message, _reason in failed:
        assert message in sent
        assert message not in seen
