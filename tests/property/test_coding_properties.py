"""Property-based tests for the erasure-coding substrate."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding.gf256 import GF256
from repro.coding.reed_solomon import ReedSolomonCode


@given(a=st.integers(0, 255), b=st.integers(0, 255), c=st.integers(0, 255))
def test_gf256_field_axioms(a, b, c):
    # Commutativity and associativity of both operations.
    assert GF256.add(a, b) == GF256.add(b, a)
    assert GF256.multiply(a, b) == GF256.multiply(b, a)
    assert GF256.add(GF256.add(a, b), c) == GF256.add(a, GF256.add(b, c))
    assert GF256.multiply(GF256.multiply(a, b), c) == GF256.multiply(
        a, GF256.multiply(b, c)
    )
    # Distributivity.
    assert GF256.multiply(a, GF256.add(b, c)) == GF256.add(
        GF256.multiply(a, b), GF256.multiply(a, c)
    )


@given(a=st.integers(1, 255), b=st.integers(1, 255))
def test_gf256_division_inverts_multiplication(a, b):
    assert GF256.divide(GF256.multiply(a, b), b) == a


@given(
    params=st.tuples(st.integers(1, 24), st.integers(0, 23)).map(
        lambda t: (t[0] + t[1], t[0])  # n >= k
    ),
    data=st.binary(min_size=0, max_size=600),
    seed=st.integers(0, 1000),
)
@settings(max_examples=40, deadline=None)
def test_reed_solomon_any_k_of_n(params, data, seed):
    """Any k distinct fragments of an (n, k) encoding reconstruct the data."""
    n, k = params
    code = ReedSolomonCode(n, k)
    fragments = code.encode(data)
    rng = random.Random(seed)
    subset = rng.sample(fragments, k)
    assert code.decode(subset, len(data)) == data


@given(
    data=st.binary(min_size=1, max_size=400),
    seed=st.integers(0, 100),
)
@settings(max_examples=30, deadline=None)
def test_reed_solomon_systematic_property(data, seed):
    """The first k fragments concatenate to the (padded) original data."""
    rng = random.Random(seed)
    k = rng.randint(1, 8)
    n = k + rng.randint(0, 8)
    code = ReedSolomonCode(n, k)
    fragments = code.encode(data)
    systematic = b"".join(f.data for f in fragments[:k])
    assert systematic[: len(data)] == data
    assert set(systematic[len(data):]) <= {0}  # zero padding only
