"""Property-based tests for the SOUP core invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import SoupConfig
from repro.core.dropping import ReplicaStore
from repro.core.experience import ExperienceReport, update_experience
from repro.core.selection import select_mirrors

CONFIG = SoupConfig()


reports_strategy = st.lists(
    st.builds(
        ExperienceReport,
        reporter=st.integers(0, 50),
        mirror=st.integers(0, 20),
        observations=st.integers(0, 100),
        availability=st.floats(0.0, 1.0),
    ),
    max_size=40,
)


class TestExperienceProperties:
    @given(reports=reports_strategy, alpha=st.floats(0.0, 1.0))
    def test_updated_values_stay_in_unit_interval(self, reports, alpha):
        for normalization in ("by_cap", "by_observations"):
            updated = update_experience(
                {}, reports, alpha=alpha, o_max=5, normalization=normalization
            )
            assert all(0.0 <= v <= 1.0 for v in updated.values())

    @given(reports=reports_strategy)
    def test_old_values_bound_update_range(self, reports):
        old = {mirror: 0.5 for mirror in range(21)}
        updated = update_experience(old, reports, alpha=0.75, o_max=5)
        # With alpha=0.75, the new value is within 0.75 of the old one.
        for mirror, value in updated.items():
            assert abs(value - old[mirror]) <= 0.75 + 1e-9

    @given(
        o=st.integers(1, 100),
        av=st.floats(0.0, 1.0),
        o_max=st.integers(1, 10),
    )
    def test_single_report_capped_influence(self, o, av, o_max):
        report = ExperienceReport(reporter=1, mirror=1, observations=o, availability=av)
        updated = update_experience({}, [report], alpha=1.0, o_max=o_max)
        # by_observations with one reporter: value equals availability.
        assert abs(updated[1] - av) < 1e-9


ranking_strategy = st.lists(
    st.tuples(st.integers(0, 100), st.floats(0.0, 1.0)),
    max_size=60,
    unique_by=lambda pair: pair[0],
)


class TestSelectionProperties:
    @given(ranking=ranking_strategy, seed=st.integers(0, 1000))
    @settings(max_examples=60)
    def test_no_duplicates_and_exclusions_respected(self, ranking, seed):
        excluded = {n for n, _ in ranking[:3]}
        result = select_mirrors(
            ranking,
            friends=[],
            config=CONFIG,
            rng=random.Random(seed),
            exploration_pool=[n for n, _ in ranking],
            exclude=excluded,
        )
        assert len(result.mirrors) == len(set(result.mirrors))
        assert not set(result.mirrors) & excluded

    @given(ranking=ranking_strategy, seed=st.integers(0, 1000))
    @settings(max_examples=60)
    def test_mirror_count_bounded(self, ranking, seed):
        result = select_mirrors(ranking, [], CONFIG, random.Random(seed))
        assert len(result.mirrors) <= CONFIG.max_mirrors + 1  # + exploration

    @given(ranking=ranking_strategy, seed=st.integers(0, 1000))
    @settings(max_examples=60)
    def test_estimated_error_is_product_of_selected(self, ranking, seed):
        result = select_mirrors(ranking, [], CONFIG, random.Random(seed))
        ranks = {n: max(0.0, min(1.0, r)) for n, r in ranking}
        product = 1.0
        greedy = result.mirrors[:-1] if result.exploration_node is not None else result.mirrors
        for mirror in greedy:
            if not any(old == mirror for old, _ in result.replacements):
                product *= 1.0 - ranks.get(mirror, 0.0)
        # Replacements alter the product; only check the no-replacement case.
        if not result.replacements:
            assert abs(product - result.estimated_error) < 1e-9

    @given(
        ranking=ranking_strategy,
        friends=st.sets(st.integers(0, 100), max_size=10),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=60)
    def test_friends_parameter_never_breaks_selection(self, ranking, friends, seed):
        result = select_mirrors(
            ranking, friends=friends, config=CONFIG, rng=random.Random(seed)
        )
        assert len(result.mirrors) == len(set(result.mirrors))


class TestDroppingProperties:
    @given(
        requests=st.lists(
            st.tuples(st.integers(1, 40), st.booleans()), min_size=1, max_size=120
        ),
        capacity=st.floats(1.0, 20.0),
    )
    @settings(max_examples=60)
    def test_capacity_never_exceeded(self, requests, capacity):
        store = ReplicaStore(owner=999, capacity_profiles=capacity, config=CONFIG)
        for owner, is_friend in requests:
            store.request_store(owner, size_profiles=1.0, is_friend=is_friend)
        assert store.used_profiles <= capacity + 1e-9

    @given(
        requests=st.lists(st.integers(1, 30), min_size=1, max_size=60),
        exchanges=st.lists(st.lists(st.integers(1, 30), max_size=10), max_size=20),
    )
    @settings(max_examples=40)
    def test_scores_and_blacklist_consistent(self, requests, exchanges):
        store = ReplicaStore(owner=999, capacity_profiles=10.0, config=CONFIG)
        for owner in requests:
            store.request_store(owner)
        for stored_at_friend in exchanges:
            store.learn_friend_storage(stored_at_friend)
        for owner in store.blacklisted_owners():
            assert not store.stores_for(owner)
            assert store.dropping_score(owner) >= CONFIG.theta
