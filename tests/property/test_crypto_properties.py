"""Property-based tests for the crypto substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import abe
from repro.crypto.abe import AbeAuthority, AbeError
from repro.crypto.access import AccessStructure, attr, threshold
from repro.crypto.symmetric import symmetric_decrypt, symmetric_encrypt

AUTHORITY = AbeAuthority(master_secret=b"prop" * 8, authority_id="prop")
ATTRIBUTES = ["a", "b", "c", "d", "e"]


@st.composite
def access_structures(draw, depth=0):
    """Random access-structure trees over the fixed attribute universe."""
    if depth >= 2 or draw(st.booleans()):
        return attr(draw(st.sampled_from(ATTRIBUTES)))
    n_children = draw(st.integers(1, 3))
    children = [draw(access_structures(depth=depth + 1)) for _ in range(n_children)]
    k = draw(st.integers(1, n_children))
    return threshold(k, *children)


@given(policy=access_structures(), held=st.sets(st.sampled_from(ATTRIBUTES)))
@settings(max_examples=80, deadline=None)
def test_abe_decrypts_exactly_when_policy_satisfied(policy, held):
    ciphertext = AUTHORITY.encrypt(b"payload", policy)
    if not held:
        return  # issuing an empty key is rejected by design
    key = AUTHORITY.issue_key(held)
    if policy.is_satisfied_by(held):
        assert abe.decrypt(ciphertext, key) == b"payload"
    else:
        try:
            abe.decrypt(ciphertext, key)
            raise AssertionError("decryption succeeded without satisfying policy")
        except AbeError:
            pass


@given(policy=access_structures())
@settings(max_examples=50, deadline=None)
def test_policy_attribute_closure(policy):
    """Holding every mentioned attribute always satisfies the structure."""
    assert policy.is_satisfied_by(policy.attributes())


@given(data=st.binary(max_size=4096), key=st.binary(min_size=16, max_size=32))
@settings(max_examples=80, deadline=None)
def test_symmetric_roundtrip(data, key):
    assert symmetric_decrypt(key, symmetric_encrypt(key, data)) == data


@given(data=st.binary(min_size=1, max_size=512))
@settings(max_examples=40, deadline=None)
def test_symmetric_ciphertext_never_contains_long_plaintext_run(data):
    if len(data) < 16:
        return
    blob = symmetric_encrypt(b"k" * 16, data)
    body = blob[16:-32]
    assert body != data
