"""Property-based tests for Algorithm 1 (mirror selection, Sec. 4.5)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import SoupConfig
from repro.core.selection import boosted_rank, select_mirrors

node_ids = st.integers(1, 10_000)
ranks = st.floats(0.0, 1.0, allow_nan=False)
rankings = st.lists(
    st.tuples(node_ids, ranks), min_size=0, max_size=60, unique_by=lambda p: p[0]
)


def run(ranking, friends=(), pool=(), exclude=(), seed=0, config=None):
    return select_mirrors(
        ranking=ranking,
        friends=friends,
        config=config or SoupConfig(),
        rng=random.Random(seed),
        exploration_pool=pool,
        exclude=exclude,
    )


@given(ranking=rankings, seed=st.integers(0, 50))
def test_greedy_terminates_at_epsilon_or_exhaustion(ranking, seed):
    """perr = Π(1−r) after stage 1 is below ε unless candidates ran out."""
    config = SoupConfig()
    result = run(ranking, seed=seed, config=config)
    positive = [r for _, r in ranking if r > 0.0]
    exhausted = len(result.mirrors) >= min(len(positive), config.max_mirrors)
    assert result.estimated_error <= config.epsilon or exhausted
    # perr matches the product over the greedy-selected ranks exactly.
    ranks_by_node = {node: min(1.0, max(0.0, r)) for node, r in ranking}
    greedy = [m for m in result.mirrors if m != result.exploration_node]
    perr = 1.0
    for mirror in greedy:
        perr *= 1.0 - ranks_by_node[mirror]
    assert abs(perr - result.estimated_error) < 1e-9


@given(ranking=rankings, seed=st.integers(0, 50))
def test_no_superfluous_mirrors(ranking, seed):
    """Dropping the last greedy pick must push perr back above ε."""
    config = SoupConfig()
    result = run(ranking, seed=seed, config=config)
    greedy = [m for m in result.mirrors if m != result.exploration_node]
    if len(greedy) < 2 or len(greedy) >= config.max_mirrors:
        return
    ranks_by_node = {node: min(1.0, max(0.0, r)) for node, r in ranking}
    perr_without_last = 1.0
    for mirror in greedy[:-1]:
        perr_without_last *= 1.0 - ranks_by_node[mirror]
    assert perr_without_last > config.epsilon


@given(
    ranking=rankings,
    pool=st.sets(st.integers(20_000, 30_000), min_size=1, max_size=10),
    seed=st.integers(0, 50),
)
def test_exploration_node_always_included(ranking, pool, seed):
    """Stage 3 always adds one unranked node while under the mirror cap."""
    config = SoupConfig()
    result = run(ranking, pool=sorted(pool), seed=seed, config=config)
    if len(result.mirrors) <= config.max_mirrors and result.exploration_node is None:
        # Only legal if the greedy stage alone already filled the cap.
        assert len(result.mirrors) >= config.max_mirrors
    if result.exploration_node is not None:
        assert result.exploration_node in pool
        assert result.exploration_node in result.mirrors
        ranked = {node for node, _ in ranking}
        assert result.exploration_node not in ranked


@given(
    ranking=rankings,
    friend_picks=st.sets(st.integers(0, 59), min_size=0, max_size=20),
    seed=st.integers(0, 50),
)
def test_social_filter_bound(ranking, friend_picks, seed):
    """Every friend promoted by Eq. (3) beats the replaced stranger's rank
    after the β boost; no friend worse than best-stranger/β ever swaps in."""
    config = SoupConfig()
    friends = [ranking[i][0] for i in friend_picks if i < len(ranking)]
    result = run(ranking, friends=friends, seed=seed, config=config)
    ranks_by_node = {node: min(1.0, max(0.0, r)) for node, r in ranking}
    for stranger, friend in result.replacements:
        assert friend in friends and stranger not in friends
        assert (
            boosted_rank(ranks_by_node[friend], True, config.beta)
            > ranks_by_node[stranger]
        )
        assert stranger not in result.mirrors
        assert friend in result.mirrors


@given(
    ranking=rankings,
    pool=st.sets(st.integers(20_000, 30_000), max_size=5),
    exclude_picks=st.sets(st.integers(0, 59), max_size=10),
    seed=st.integers(0, 50),
)
def test_selection_sanity(ranking, pool, exclude_picks, seed):
    """No duplicates, no excluded nodes, never above the mirror cap + 1."""
    config = SoupConfig()
    exclude = {ranking[i][0] for i in exclude_picks if i < len(ranking)}
    result = run(ranking, pool=sorted(pool), exclude=exclude, seed=seed, config=config)
    assert len(result.mirrors) == len(set(result.mirrors))
    assert not exclude & set(result.mirrors)
    assert len(result.mirrors) <= config.max_mirrors + 1
