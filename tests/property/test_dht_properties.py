"""Property-based tests for the Pastry overlay."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dht.node_state import ID_DIGITS, digit_at, ring_distance, shared_prefix_length
from repro.dht.pastry import PastryOverlay
from repro.dht.storage import DirectoryEntry

ids_strategy = st.integers(0, (1 << 64) - 1)


@given(a=ids_strategy, b=ids_strategy)
def test_ring_distance_symmetric_and_bounded(a, b):
    assert ring_distance(a, b) == ring_distance(b, a)
    assert 0 <= ring_distance(a, b) <= 1 << 63


@given(a=ids_strategy)
def test_ring_distance_identity(a):
    assert ring_distance(a, a) == 0


@given(a=ids_strategy, b=ids_strategy)
def test_shared_prefix_consistent_with_digits(a, b):
    length = shared_prefix_length(a, b)
    for position in range(length):
        assert digit_at(a, position) == digit_at(b, position)
    if length < ID_DIGITS:
        assert digit_at(a, length) != digit_at(b, length)


@given(
    membership=st.sets(ids_strategy, min_size=2, max_size=40),
    keys=st.lists(ids_strategy, min_size=1, max_size=10),
    seed=st.integers(0, 100),
)
@settings(max_examples=25, deadline=None)
def test_publish_lookup_always_agrees(membership, keys, seed):
    """Routing from any member reaches the entry published from any other."""
    rng = random.Random(seed)
    members = sorted(membership)
    overlay = PastryOverlay()
    for index, node_id in enumerate(members):
        overlay.join(node_id, bootstrap_id=members[0] if index else None)
    for key in keys:
        publisher = rng.choice(members)
        overlay.publish(publisher, key, DirectoryEntry(soup_id=key, name=str(key)))
        reader = rng.choice(members)
        entry, _ = overlay.lookup(reader, key)
        assert entry is not None
        assert entry.name == str(key)
    assert overlay.misplaced_entries() == []


@given(
    membership=st.sets(ids_strategy, min_size=5, max_size=30),
    departures=st.integers(1, 3),
    seed=st.integers(0, 100),
)
@settings(max_examples=20, deadline=None)
def test_leave_preserves_entry_placement(membership, departures, seed):
    rng = random.Random(seed)
    members = sorted(membership)
    overlay = PastryOverlay()
    for index, node_id in enumerate(members):
        overlay.join(node_id, bootstrap_id=members[0] if index else None)
    keys = [rng.getrandbits(64) for _ in range(5)]
    for key in keys:
        overlay.publish(members[0], key, DirectoryEntry(soup_id=key))
    alive = list(members)
    for _ in range(min(departures, len(alive) - 2)):
        victim = rng.choice(alive)
        alive.remove(victim)
        overlay.leave(victim)
    assert overlay.misplaced_entries() == []
    for key in keys:
        entry, _ = overlay.lookup(alive[0], key)
        assert entry is not None
