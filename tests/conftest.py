"""Shared test configuration: Hypothesis profiles and the invariant plugin.

Profiles (select with ``HYPOTHESIS_PROFILE=<name>`` or
``pytest --hypothesis-profile=<name>``):

* ``ci`` (default) — derandomized and example-capped so every CI run
  exercises the identical example set; a failure in CI always reproduces
  locally with the same command.
* ``nightly`` — aggressive: 500 examples per property, randomized, for
  the scheduled deep run (the ISSUE-1 bar for the churn properties).
* ``dev`` — Hypothesis defaults, for interactive work.
"""

import os

from hypothesis import HealthCheck, settings

settings.register_profile(
    "ci",
    derandomize=True,
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "nightly",
    max_examples=500,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile("dev", settings.get_profile("default"))

settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))

pytest_plugins = ["repro.testing.plugin"]
