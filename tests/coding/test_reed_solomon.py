"""Tests for the (n, k) Reed-Solomon code."""

import random

import pytest

from repro.coding.reed_solomon import Fragment, ReedSolomonCode, ReedSolomonError


@pytest.fixture(scope="module")
def data():
    rng = random.Random(7)
    return bytes(rng.randrange(256) for _ in range(4097))  # not k-aligned


@pytest.mark.parametrize("n,k", [(12, 8), (5, 3), (6, 6), (10, 1), (40, 13)])
def test_any_k_fragments_reconstruct(n, k, data):
    code = ReedSolomonCode(n, k)
    fragments = code.encode(data)
    assert len(fragments) == n
    rng = random.Random(n * 100 + k)
    for _ in range(5):
        subset = rng.sample(fragments, k)
        assert code.decode(subset, len(data)) == data


def test_systematic_prefix(data):
    """The first k fragments are the raw data pieces (systematic code)."""
    code = ReedSolomonCode(10, 4)
    fragments = code.encode(data)
    recombined = b"".join(f.data for f in fragments[:4])
    assert recombined[: len(data)] == data


def test_fewer_than_k_fragments_fail(data):
    code = ReedSolomonCode(8, 5)
    fragments = code.encode(data)
    with pytest.raises(ReedSolomonError):
        code.decode(fragments[:4], len(data))


def test_duplicate_fragments_do_not_count_twice(data):
    code = ReedSolomonCode(8, 3)
    fragments = code.encode(data)
    duplicated = [fragments[0]] * 5 + [fragments[1]]
    with pytest.raises(ReedSolomonError):
        code.decode(duplicated, len(data))


def test_parity_only_reconstruction(data):
    """Reconstruction from parity fragments alone (no systematic pieces)."""
    code = ReedSolomonCode(10, 4)
    fragments = code.encode(data)
    assert code.decode(fragments[4:8], len(data)) == data


def test_fragment_sizes_equal(data):
    code = ReedSolomonCode(9, 4)
    fragments = code.encode(data)
    sizes = {len(f.data) for f in fragments}
    assert len(sizes) == 1
    assert sizes.pop() == (len(data) + 3) // 4


def test_storage_overhead(data):
    assert ReedSolomonCode(12, 8).storage_overhead == pytest.approx(1.5)


def test_empty_data_roundtrip():
    code = ReedSolomonCode(6, 3)
    fragments = code.encode(b"")
    assert code.decode(fragments[:3], 0) == b""


def test_invalid_parameters():
    with pytest.raises(ReedSolomonError):
        ReedSolomonCode(2, 3)
    with pytest.raises(ReedSolomonError):
        ReedSolomonCode(0, 0)
    with pytest.raises(ReedSolomonError):
        ReedSolomonCode(300, 10)


def test_out_of_range_fragment_rejected(data):
    code = ReedSolomonCode(6, 3)
    fragments = code.encode(data)
    bad = Fragment(index=99, data=fragments[0].data)
    with pytest.raises(ReedSolomonError):
        code.decode([bad] + fragments[:2], len(data))


def test_inconsistent_lengths_rejected(data):
    code = ReedSolomonCode(6, 3)
    fragments = code.encode(data)
    truncated = Fragment(index=fragments[0].index, data=fragments[0].data[:-1])
    with pytest.raises(ReedSolomonError):
        code.decode([truncated, fragments[1], fragments[2]], len(data))
