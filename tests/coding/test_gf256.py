"""Tests for GF(2^8) arithmetic."""

import pytest

from repro.coding.gf256 import GF256, gf_matrix_invert, gf_matrix_multiply


def test_addition_is_xor():
    assert GF256.add(0b1010, 0b0110) == 0b1100
    assert GF256.add(7, 7) == 0  # characteristic 2
    assert GF256.sub(5, 3) == GF256.add(5, 3)


def test_multiplicative_identity_and_zero():
    for a in (1, 17, 255):
        assert GF256.multiply(a, 1) == a
        assert GF256.multiply(a, 0) == 0


def test_every_nonzero_element_has_inverse():
    for a in range(1, 256):
        assert GF256.multiply(a, GF256.inverse(a)) == 1


def test_division_consistent_with_multiplication():
    for a in (3, 100, 250):
        for b in (7, 19, 255):
            assert GF256.multiply(GF256.divide(a, b), b) == a


def test_division_by_zero_rejected():
    with pytest.raises(ZeroDivisionError):
        GF256.divide(5, 0)
    with pytest.raises(ZeroDivisionError):
        GF256.inverse(0)


def test_multiplication_commutative_and_associative():
    triples = [(3, 7, 11), (100, 200, 50), (255, 2, 128)]
    for a, b, c in triples:
        assert GF256.multiply(a, b) == GF256.multiply(b, a)
        assert GF256.multiply(GF256.multiply(a, b), c) == GF256.multiply(
            a, GF256.multiply(b, c)
        )


def test_distributivity():
    for a, b, c in [(3, 7, 11), (100, 200, 50)]:
        left = GF256.multiply(a, GF256.add(b, c))
        right = GF256.add(GF256.multiply(a, b), GF256.multiply(a, c))
        assert left == right


def test_power():
    assert GF256.power(2, 0) == 1
    assert GF256.power(2, 1) == 2
    assert GF256.power(2, 2) == 4
    assert GF256.power(0, 5) == 0
    assert GF256.power(0, 0) == 1


def test_generator_walks_whole_group():
    seen = {GF256.element(i) for i in range(255)}
    assert len(seen) == 255
    assert 0 not in seen


def test_matrix_multiply_identity():
    identity = [[1, 0], [0, 1]]
    matrix = [[3, 7], [11, 200]]
    assert gf_matrix_multiply(identity, matrix) == matrix


def test_matrix_invert_roundtrip():
    matrix = [[1, 2, 3], [4, 5, 6], [7, 8, 10]]
    inverse = gf_matrix_invert(matrix)
    product = gf_matrix_multiply(matrix, inverse)
    identity = [[1 if i == j else 0 for j in range(3)] for i in range(3)]
    assert product == identity


def test_singular_matrix_rejected():
    with pytest.raises(ValueError):
        gf_matrix_invert([[1, 2], [1, 2]])  # identical rows: XOR-dependent


def test_dimension_mismatch_rejected():
    with pytest.raises(ValueError):
        gf_matrix_multiply([[1, 2, 3]], [[1], [2]])
