"""Tests for erasure-coded replica placement."""

import numpy as np
import pytest

from repro.coding.fragments import (
    availability_probability,
    coded_availability,
    equivalent_full_replication,
    plan_for_profile,
)
from repro.coding.reed_solomon import ReedSolomonError


def test_plan_shapes():
    plan = plan_for_profile(owner=1, profile_bytes=10_000_000, mirrors=list(range(12)), k=8)
    assert plan.n == 12
    assert plan.fragment_bytes == 1_250_000
    assert plan.storage_overhead == pytest.approx(1.5)
    assert plan.holders() == list(range(12))


def test_plan_requires_enough_mirrors():
    with pytest.raises(ReedSolomonError):
        plan_for_profile(1, 1000, mirrors=[1, 2], k=3)


def test_zero_byte_profile():
    plan = plan_for_profile(1, 0, mirrors=[1, 2, 3], k=2)
    assert plan.fragment_bytes == 0
    assert plan.storage_overhead == 0.0


def test_coded_availability_threshold():
    plan = plan_for_profile(1, 1000, mirrors=list(range(10)), k=4)
    online = {m: m < 4 for m in range(10)}
    assert coded_availability(plan, online)
    online[3] = False
    assert not coded_availability(plan, online)


def test_coded_availability_with_numpy_row():
    plan = plan_for_profile(1, 1000, mirrors=[0, 1, 2, 3], k=2)
    online = np.array([True, True, False, False])
    assert coded_availability(plan, online)
    assert not coded_availability(plan, np.array([True, False, False, False]))


class TestAvailabilityProbability:
    def test_k_one_matches_any_online(self):
        p = [0.3, 0.5]
        expected = 1 - 0.7 * 0.5
        assert availability_probability(p, 1) == pytest.approx(expected)

    def test_all_required(self):
        p = [0.5, 0.5, 0.5]
        assert availability_probability(p, 3) == pytest.approx(0.125)

    def test_monotone_in_k(self):
        p = [0.4] * 10
        values = [availability_probability(p, k) for k in range(1, 11)]
        assert values == sorted(values, reverse=True)

    def test_insufficient_holders(self):
        assert availability_probability([0.9], 2) == 0.0

    def test_k_zero_always_available(self):
        assert availability_probability([], 0) == 1.0


def test_coding_beats_replication_on_storage():
    """The paper's motivation: at comparable availability, fragments cost
    far less storage than full replicas for large profiles."""
    holder_p = [0.6] * 12
    # Full replication: replicas to push perr below 1 %.
    replicas = equivalent_full_replication(holder_p, epsilon=0.01)
    full_storage = replicas * 1.0  # profiles
    # Coding: (12, 5) needs storage 12/5 = 2.4 profiles and still keeps
    # P(>=5 of 12 online at p=0.6) above 90 %.
    coded_av = availability_probability(holder_p, 5)
    coded_storage = 12 / 5
    assert coded_av > 0.9
    assert coded_storage < full_storage
