"""Tests for user profiles and item sizing."""

import random

import pytest

from repro.node.profile import DataItem, Profile, sample_item_size


def test_profile_versioning():
    profile = Profile(owner_id=1)
    assert profile.version == 0
    item = DataItem.photo()
    profile.add_item(item)
    assert profile.version == 1
    profile.remove_item(item.item_id)
    assert profile.version == 2
    assert not profile.remove_item(item.item_id)
    assert profile.version == 2


def test_profile_size_sums_items():
    profile = Profile(owner_id=1)
    profile.add_items([DataItem.text(1000), DataItem.photo(50_000)])
    assert profile.size_bytes() == 51_000
    assert len(profile) == 2


def test_items_of_kind():
    profile = Profile(owner_id=1)
    profile.add_items([DataItem.text(), DataItem.photo(), DataItem.photo()])
    assert len(profile.items_of_kind("photo")) == 2
    assert len(profile.items_of_kind("video")) == 0


def test_item_ids_unique():
    items = [DataItem.text() for _ in range(100)]
    assert len({item.item_id for item in items}) == 100


class TestItemSizes:
    def test_measured_shape(self):
        """Sec. 7: 35 % of items < 10 KB, 93 % < 100 KB."""
        rng = random.Random(0)
        kinds = ["text"] * 40 + ["photo"] * 57 + ["video"] * 3
        sizes = [sample_item_size(rng.choice(kinds), rng) for _ in range(5000)]
        small = sum(1 for s in sizes if s < 10_000) / len(sizes)
        medium = sum(1 for s in sizes if s < 100_000) / len(sizes)
        assert 0.25 <= small <= 0.55
        assert 0.85 <= medium <= 0.97

    def test_videos_are_large(self):
        rng = random.Random(0)
        assert sample_item_size("video", rng) >= 2_000_000

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            sample_item_size("hologram", random.Random(0))
