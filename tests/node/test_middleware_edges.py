"""Edge-case tests for middleware paths not covered elsewhere."""

import pytest

from repro.core.config import SoupConfig
from repro.dht.bootstrap import BootstrapRegistry
from repro.dht.pastry import PastryOverlay
from repro.network.events import EventLoop
from repro.network.simnet import SimNetwork
from repro.node.middleware import SoupNode
from repro.node.profile import DataItem


@pytest.fixture()
def world():
    loop = EventLoop()
    network = SimNetwork(loop)
    overlay = PastryOverlay()
    registry = BootstrapRegistry()
    nodes = {}

    def make(name, seed, **kwargs):
        node = SoupNode(
            name=name, network=network, overlay=overlay, registry=registry,
            peer_resolver=nodes.get, config=SoupConfig(), seed=seed,
            key_bits=256, **kwargs,
        )
        nodes[node.node_id] = node
        return node

    boot = make("boot", 1)
    boot.join()
    boot.make_bootstrap_node()
    users = [make(f"u{i}", 10 + i) for i in range(8)]
    for user in users:
        user.join()
    for a in [boot] + users:
        for b in [boot] + users:
            if a is not b:
                a.contact(b.node_id)
    return loop, network, nodes, boot, users, make


def test_offline_node_selection_round_is_noop(world):
    loop, network, nodes, boot, users, make = world
    node = users[0]
    node.run_selection_round()
    before = list(node.mirror_manager.announced_mirrors)
    node.go_offline()
    assert node.run_selection_round() == before


def test_go_online_is_idempotent(world):
    loop, network, nodes, boot, users, make = world
    node = users[1]
    node.go_online()  # already online: no-op
    assert node.online
    node.go_offline()
    node.go_offline()  # double offline: no-op
    assert not node.online


def test_withdrawn_mirror_loses_replica_and_log(world):
    loop, network, nodes, boot, users, make = world
    owner = users[2]
    accepted = owner.run_selection_round()
    owner.post_item(DataItem.text(1000, created_at=loop.now))
    mirror = nodes[accepted[0]]
    assert mirror.mirror_manager.store.stores_for(owner.node_id)
    assert mirror.mirror_manager.update_log_for(owner.node_id) is not None
    mirror.mirror_manager.handle_withdraw(owner.node_id)
    assert not mirror.mirror_manager.store.stores_for(owner.node_id)
    assert mirror.mirror_manager.update_log_for(owner.node_id) is None


def test_befriend_offline_target_fails(world):
    loop, network, nodes, boot, users, make = world
    a, b = users[3], users[4]
    b.go_offline()
    assert not a.befriend(b.node_id)
    assert not a.social.is_friend(b.node_id)
    b.go_online()


def test_republishing_bumps_entry_version(world):
    loop, network, nodes, boot, users, make = world
    node = users[5]
    node.publish_entry()
    first = boot.lookup_user(node.node_id).version
    node.publish_entry()
    assert boot.lookup_user(node.node_id).version == first + 1


def test_exchange_without_observations_sends_nothing(world):
    loop, network, nodes, boot, users, make = world
    a, b = users[6], users[7]
    a.befriend(b.node_id)
    assert a.exchange_experience_sets() == 0  # nothing observed yet


def test_profile_request_observes_only_for_friends(world):
    loop, network, nodes, boot, users, make = world
    owner = users[0]
    stranger = users[6]
    owner.run_selection_round()
    owner.go_offline()
    stranger.request_profile(owner.node_id)
    es = stranger.mirror_manager.experience_sets.get(owner.node_id)
    assert es is None or len(es) == 0  # strangers record no experience
    owner.go_online()


def test_sync_unknown_device_rejected(world):
    loop, network, nodes, boot, users, make = world
    with pytest.raises(LookupError):
        users[0].sync_device("ghost-device")


def test_coded_node_with_too_few_mirrors_falls_back_to_full(world):
    loop, network, nodes, boot, users, make = world
    owner = make("coded-owner", 99, coding_k=30, coding_threshold_bytes=1000)
    owner.join()
    for other in users:
        owner.contact(other.node_id)
    owner.post_item(DataItem.video(5_000_000, created_at=loop.now))
    accepted = owner.run_selection_round()
    # Fewer than k mirrors available: full replication is used instead.
    assert len(accepted) < 30
    assert owner.mirror_manager.coded_plan is None
