"""Tests for erasure-coded replication in the middleware (Sec. 8)."""

import pytest

from repro.core.config import SoupConfig
from repro.dht.bootstrap import BootstrapRegistry
from repro.dht.pastry import PastryOverlay
from repro.network.events import EventLoop
from repro.network.simnet import SimNetwork
from repro.node.middleware import SoupNode
from repro.node.profile import DataItem


@pytest.fixture()
def world():
    loop = EventLoop()
    network = SimNetwork(loop)
    overlay = PastryOverlay()
    registry = BootstrapRegistry()
    nodes = {}

    def make(name, seed, coding_k=0, threshold=1_000_000):
        node = SoupNode(
            name=name,
            network=network,
            overlay=overlay,
            registry=registry,
            peer_resolver=nodes.get,
            config=SoupConfig(),
            seed=seed,
            key_bits=256,
            coding_k=coding_k,
            coding_threshold_bytes=threshold,
        )
        nodes[node.node_id] = node
        return node

    boot = make("boot", seed=1)
    boot.join()
    boot.make_bootstrap_node()
    peers = [make(f"p{i}", seed=10 + i) for i in range(9)]
    for peer in peers:
        peer.join()
    return loop, network, nodes, make, boot, peers


def _spread_knowledge(owner, peers, boot):
    for other in peers + [boot]:
        if other is not owner:
            owner.contact(other.node_id)


def test_large_profile_uses_fragments(world):
    loop, network, nodes, make, boot, peers = world
    owner = make("owner", seed=99, coding_k=3, threshold=1_000_000)
    owner.join()
    _spread_knowledge(owner, peers, boot)
    owner.post_item(DataItem.video(9_000_000, created_at=loop.now))

    sent_before = network.meters[owner.node_id].total_sent()
    accepted = owner.run_selection_round()
    loop.run_until(loop.now + 60)
    sent = network.meters[owner.node_id].total_sent() - sent_before

    plan = owner.mirror_manager.coded_plan
    assert plan is not None
    assert plan.k == 3
    assert plan.holders() == accepted
    # Fragments, not full copies: total push is ~n/k profiles, far below
    # n full replicas.
    full_cost = len(accepted) * owner.replica_size_bytes()
    assert sent < 0.6 * full_cost
    assert plan.fragment_bytes == pytest.approx(owner.replica_size_bytes() / 3, rel=0.01)


def test_small_profile_stays_fully_replicated(world):
    loop, network, nodes, make, boot, peers = world
    owner = make("owner2", seed=98, coding_k=3, threshold=1_000_000)
    owner.join()
    _spread_knowledge(owner, peers, boot)
    owner.post_item(DataItem.text(2_000, created_at=loop.now))
    owner.run_selection_round()
    assert owner.mirror_manager.coded_plan is None


def test_coding_disabled_by_default(world):
    loop, network, nodes, make, boot, peers = world
    owner = make("owner3", seed=97)  # coding_k=0
    owner.join()
    _spread_knowledge(owner, peers, boot)
    owner.post_item(DataItem.video(9_000_000, created_at=loop.now))
    owner.run_selection_round()
    assert owner.mirror_manager.coded_plan is None


def test_coded_profile_needs_k_online_holders(world):
    loop, network, nodes, make, boot, peers = world
    owner = make("owner4", seed=96, coding_k=3, threshold=1_000_000)
    owner.join()
    _spread_knowledge(owner, peers, boot)
    owner.post_item(DataItem.video(9_000_000, created_at=loop.now))
    accepted = owner.run_selection_round()
    loop.run_until(loop.now + 60)
    owner.go_offline()

    reader = peers[0]
    assert reader.request_profile(owner.node_id)

    # Knock holders offline until fewer than k remain.
    plan = owner.mirror_manager.coded_plan
    for mirror_id in plan.holders()[: len(plan.holders()) - 2]:
        nodes[mirror_id].go_offline()
    assert not reader.request_profile(owner.node_id)
