"""Tests for the Fig. 2 update-forwarding chain.

"As u is offline, updates for u have to be stored at u's mirrors, v and w.
Mirror v itself is also offline, so that updates for u ... have to be
further passed on to v's mirrors x and y."
"""

import pytest

from repro.core.config import SoupConfig
from repro.dht.bootstrap import BootstrapRegistry
from repro.dht.pastry import PastryOverlay
from repro.network.events import EventLoop
from repro.network.simnet import SimNetwork
from repro.node.middleware import SoupNode


@pytest.fixture()
def world():
    loop = EventLoop()
    network = SimNetwork(loop)
    overlay = PastryOverlay()
    registry = BootstrapRegistry()
    nodes = {}

    def make(name, seed):
        node = SoupNode(
            name=name, network=network, overlay=overlay, registry=registry,
            peer_resolver=nodes.get, config=SoupConfig(), seed=seed, key_bits=256,
        )
        nodes[node.node_id] = node
        return node

    boot = make("boot", 1)
    boot.join()
    boot.make_bootstrap_node()
    users = [make(f"u{i}", 10 + i) for i in range(10)]
    for user in users:
        user.join()
    everyone = [boot] + users
    for a in everyone:
        for b in everyone:
            if a is not b:
                a.contact(b.node_id)
    return loop, network, nodes, boot, users


def test_update_forwarded_to_mirrors_mirrors(world):
    loop, network, nodes, boot, users = world
    target = users[0]
    sender = users[1]

    # Everyone selects mirrors so forwarding targets exist.
    for user in users + [boot]:
        user.run_selection_round()
    loop.run_until(loop.now + 5)

    target_mirrors = list(target.mirror_manager.announced_mirrors)
    assert target_mirrors

    # Take the target AND all of its mirrors offline — the paper's worst
    # case — except the mirrors' own mirrors.
    target.go_offline()
    for mirror_id in target_mirrors:
        nodes[mirror_id].go_offline()

    delivered = sender.send_message(target.node_id, "deep store-and-forward")
    # Either some mirror's mirror was online (delivered) or genuinely no
    # forwarding target existed; assert the mechanism, not luck:
    forward_holders = [
        node for node in nodes.values()
        if node.mirror_manager.update_buffer.pending_count(target.node_id)
    ]
    if delivered:
        assert forward_holders
        # The holders are NOT the direct (offline) mirrors.
        direct = set(target_mirrors)
        assert any(h.node_id not in direct for h in forward_holders)

    # The direct mirror returns, collects the forwarded update from its own
    # mirrors, and the target finally receives it.
    if delivered:
        for mirror_id in target_mirrors:
            nodes[mirror_id].go_online()
        loop.run_until(loop.now + 5)
        target.go_online()
        loop.run_until(loop.now + 5)
        texts = [
            (o.payload or {}).get("text")
            for o in target.applications.messages_received()
        ]
        assert "deep store-and-forward" in texts


def test_duplicate_updates_deduplicated_across_mirrors(world):
    loop, network, nodes, boot, users = world
    target = users[2]
    sender = users[3]
    for user in users:
        user.run_selection_round()
    loop.run_until(loop.now + 5)

    target.go_offline()
    assert sender.send_message(target.node_id, "only once")
    loop.run_until(loop.now + 5)
    target.go_online()
    loop.run_until(loop.now + 5)
    texts = [
        (o.payload or {}).get("text")
        for o in target.applications.messages_received()
    ]
    # Delivered to several mirrors, applied exactly once.
    assert texts.count("only once") == 1
