"""Tests for mobile gateway switching (Sec. 3.3) and object verification
hardening (Sec. 3.4)."""

import pytest

from repro.core.config import SoupConfig
from repro.core.objects import ObjectType, SoupObject
from repro.dht.bootstrap import BootstrapRegistry
from repro.dht.pastry import PastryOverlay
from repro.network.events import EventLoop
from repro.network.simnet import SimNetwork
from repro.node.middleware import SoupNode


@pytest.fixture()
def world():
    loop = EventLoop()
    network = SimNetwork(loop)
    overlay = PastryOverlay()
    registry = BootstrapRegistry()
    nodes = {}

    def make(name, seed, mobile=False, relay_limit=4):
        node = SoupNode(
            name=name, network=network, overlay=overlay, registry=registry,
            peer_resolver=nodes.get, config=SoupConfig(), seed=seed,
            is_mobile=mobile, key_bits=256, mobile_relay_limit=relay_limit,
        )
        nodes[node.node_id] = node
        return node

    boot = make("boot", 1)
    boot.join()
    boot.make_bootstrap_node()
    return loop, network, nodes, make, boot


class TestGatewaySwitching:
    def test_mobile_switches_away_from_bootstrap(self, world):
        loop, network, nodes, make, boot = world
        regular = make("regular", 10)
        regular.join()
        phone = make("phone", 20, mobile=True)
        phone.join(bootstrap_id=boot.node_id)
        assert phone.interface.gateway_id == boot.node_id

        phone.contact(regular.node_id)
        assert phone.interface.gateway_id == regular.node_id
        assert phone.node_id in regular.relayed_mobiles

    def test_relay_limit_respected(self, world):
        loop, network, nodes, make, boot = world
        regular = make("regular", 10, relay_limit=1)
        regular.join()
        phones = [make(f"phone{i}", 20 + i, mobile=True) for i in range(3)]
        for phone in phones:
            phone.join(bootstrap_id=boot.node_id)
            phone.contact(regular.node_id)
        switched = [p for p in phones if p.interface.gateway_id == regular.node_id]
        assert len(switched) == 1
        assert len(regular.relayed_mobiles) == 1

    def test_no_switch_between_non_bootstrap_gateways(self, world):
        loop, network, nodes, make, boot = world
        a = make("a", 10)
        b = make("b", 11)
        a.join()
        b.join()
        phone = make("phone", 20, mobile=True)
        phone.join(bootstrap_id=boot.node_id)
        phone.contact(a.node_id)
        assert phone.interface.gateway_id == a.node_id
        phone.contact(b.node_id)  # already has a regular gateway: stay
        assert phone.interface.gateway_id == a.node_id

    def test_mobile_never_becomes_gateway(self, world):
        loop, network, nodes, make, boot = world
        phone_a = make("phoneA", 20, mobile=True)
        phone_b = make("phoneB", 21, mobile=True)
        phone_a.join(bootstrap_id=boot.node_id)
        phone_b.join(bootstrap_id=boot.node_id)
        phone_a.contact(phone_b.node_id)
        assert phone_a.interface.gateway_id == boot.node_id

    def test_fallback_when_gateway_dies(self, world):
        loop, network, nodes, make, boot = world
        regular = make("regular", 10)
        regular.join()
        phone = make("phone", 20, mobile=True)
        phone.join(bootstrap_id=boot.node_id)
        phone.contact(regular.node_id)
        assert phone.interface.gateway_id == regular.node_id

        regular.go_offline()
        entry = phone.lookup_user(boot.node_id)  # triggers the fallback
        assert entry is not None
        assert phone.interface.gateway_id == boot.node_id


class TestObjectVerification:
    def test_legit_message_delivered(self, world):
        loop, network, nodes, make, boot = world
        a = make("a", 10)
        b = make("b", 11)
        a.join()
        b.join()
        assert a.send_message(b.node_id, "hello")
        loop.run_until(loop.now + 5)
        assert len(b.applications.messages_received()) == 1
        assert b.dropped_objects == 0

    def test_unsigned_message_discarded(self, world):
        loop, network, nodes, make, boot = world
        a = make("a", 10)
        b = make("b", 11)
        a.join()
        b.join()
        forged = SoupObject(
            source=a.node_id, dest=b.node_id, object_type=ObjectType.MESSAGE,
            payload={"text": "unsigned"},
        )
        network.send(a.node_id, b.node_id, forged, forged.size_bytes())
        loop.run_until(loop.now + 5)
        assert b.applications.messages_received() == []
        assert b.dropped_objects == 1

    def test_spoofed_source_discarded(self, world):
        loop, network, nodes, make, boot = world
        a = make("a", 10)
        b = make("b", 11)
        mallory = make("mallory", 66)
        for node in (a, b, mallory):
            node.join()
        # Mallory signs with her key but claims the object came from a.
        spoof = SoupObject(
            source=a.node_id, dest=b.node_id, object_type=ObjectType.MESSAGE,
            payload={"text": "trust me, I'm a"},
        )
        mallory.security.sign_object(spoof)
        network.send(mallory.node_id, b.node_id, spoof, spoof.size_bytes())
        loop.run_until(loop.now + 5)
        assert b.applications.messages_received() == []
        assert b.dropped_objects == 1

    def test_tampered_payload_discarded(self, world):
        loop, network, nodes, make, boot = world
        a = make("a", 10)
        b = make("b", 11)
        a.join()
        b.join()
        obj = a.applications.encapsulate(
            b.node_id, ObjectType.MESSAGE, {"text": "original"}, 0.0
        )
        a.security.sign_object(obj)
        obj.payload = {"text": "tampered in flight"}
        network.send(a.node_id, b.node_id, obj, obj.size_bytes())
        loop.run_until(loop.now + 5)
        assert b.applications.messages_received() == []
        assert b.dropped_objects == 1
