"""Tests for the Application Manager."""

from repro.core.objects import ObjectType, SoupObject
from repro.node.application_manager import ApplicationManager


def test_encapsulation_sets_header_fields():
    apps = ApplicationManager(owner_id=7)
    obj = apps.encapsulate(9, ObjectType.MESSAGE, {"text": "hi"}, timestamp=3.0)
    assert obj.source == 7
    assert obj.dest == 9
    assert obj.timestamp == 3.0
    assert obj.payload == {"text": "hi"}


def test_deliver_dispatches_to_registered_callbacks():
    apps = ApplicationManager(owner_id=7)
    seen = []
    apps.register(ObjectType.MESSAGE, seen.append)
    message = SoupObject(1, 7, ObjectType.MESSAGE, {"text": "yo"})
    other = SoupObject(1, 7, ObjectType.UPDATE, {"x": 1})
    apps.deliver(message)
    apps.deliver(other)
    assert seen == [message]
    assert len(apps.inbox) == 2


def test_multiple_callbacks_all_fire():
    apps = ApplicationManager(owner_id=7)
    counts = [0, 0]
    apps.register(ObjectType.MESSAGE, lambda o: counts.__setitem__(0, counts[0] + 1))
    apps.register(ObjectType.MESSAGE, lambda o: counts.__setitem__(1, counts[1] + 1))
    apps.deliver(SoupObject(1, 7, ObjectType.MESSAGE))
    assert counts == [1, 1]


def test_messages_received_filter():
    apps = ApplicationManager(owner_id=7)
    apps.deliver(SoupObject(1, 7, ObjectType.MESSAGE))
    apps.deliver(SoupObject(1, 7, ObjectType.FRIEND_REQUEST))
    assert len(apps.messages_received()) == 1
