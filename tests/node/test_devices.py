"""Tests for multi-device synchronization (Sec. 3.5)."""

import pytest

from repro.core.config import SoupConfig
from repro.dht.bootstrap import BootstrapRegistry
from repro.dht.pastry import PastryOverlay
from repro.network.events import EventLoop
from repro.network.simnet import SimNetwork
from repro.node.devices import DeviceGroup, DeviceReplica, UpdateLog
from repro.node.middleware import SoupNode
from repro.node.profile import DataItem
from repro.node.sync import PendingUpdate


def update(seq, timestamp=0.0, origin=1, action="post_item", item_id=None):
    payload = {"action": action}
    if action == "post_item":
        payload.update({"item_id": item_id if item_id is not None else seq,
                        "kind": "text", "size": 100})
    return PendingUpdate(
        target_id=1, origin_id=origin, timestamp=timestamp, sequence=seq,
        payload=payload,
    )


class TestUpdateLog:
    def test_append_and_dedup(self):
        log = UpdateLog()
        assert log.append(update(1))
        assert not log.append(update(1))
        assert len(log) == 1

    def test_ordering_by_timestamp(self):
        log = UpdateLog()
        log.append(update(2, timestamp=5.0))
        log.append(update(1, timestamp=1.0))
        assert [u.sequence for u in log.entries()] == [1, 2]

    def test_bounded_retention(self):
        log = UpdateLog(max_entries=3)
        for seq in range(6):
            log.append(update(seq, timestamp=float(seq)))
        assert len(log) == 3
        assert [u.sequence for u in log.entries()] == [3, 4, 5]

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            UpdateLog(max_entries=0)


class TestDeviceReplica:
    def test_apply_builds_profile(self):
        replica = DeviceReplica(device_name="laptop", owner_id=1)
        fresh = replica.apply([update(1, item_id=10), update(2, item_id=11)])
        assert len(fresh) == 2
        assert replica.item_count == 2

    def test_apply_idempotent(self):
        replica = DeviceReplica(device_name="laptop", owner_id=1)
        replica.apply([update(1)])
        assert replica.apply([update(1)]) == []
        assert replica.item_count == 1

    def test_local_updates_not_reapplied(self):
        replica = DeviceReplica(device_name="laptop", owner_id=1)
        u = update(1)
        replica.record_local(u)
        assert replica.apply([u]) == []


class TestDeviceGroup:
    def test_attach_and_lookup(self):
        group = DeviceGroup(owner_id=1)
        group.attach("desktop")
        group.attach("phone")
        assert group.devices() == ["desktop", "phone"]
        assert group.device("phone").device_name == "phone"
        with pytest.raises(ValueError):
            group.attach("phone")
        with pytest.raises(LookupError):
            group.device("tablet")

    def test_in_sync_detection(self):
        group = DeviceGroup(owner_id=1)
        a = group.attach("a")
        b = group.attach("b")
        assert group.in_sync()
        a.apply([update(1)])
        assert not group.in_sync()
        b.apply([update(1)])
        assert group.in_sync()


class TestEndToEndDeviceSync:
    @pytest.fixture()
    def world(self):
        loop = EventLoop()
        network = SimNetwork(loop)
        overlay = PastryOverlay()
        registry = BootstrapRegistry()
        nodes = {}

        def make(name, seed):
            node = SoupNode(
                name=name, network=network, overlay=overlay, registry=registry,
                peer_resolver=nodes.get, config=SoupConfig(), seed=seed,
                key_bits=256,
            )
            nodes[node.node_id] = node
            return node

        boot = make("boot", 1)
        boot.join()
        boot.make_bootstrap_node()
        peers = [make(f"p{i}", 10 + i) for i in range(6)]
        for peer in peers:
            peer.join()
        owner = make("owner", 99)
        owner.join()
        for other in peers + [boot]:
            owner.contact(other.node_id)
        owner.run_selection_round()
        loop.run_until(loop.now + 5)
        return loop, owner

    def test_second_device_catches_up_via_mirrors(self, world):
        loop, owner = world
        owner.attach_device("desktop")
        owner.attach_device("phone")

        # The desktop posts while the phone is "asleep".
        for _ in range(3):
            owner.post_item(DataItem.text(1500, created_at=loop.now), device="desktop")
        loop.run_until(loop.now + 5)

        assert owner.devices.device("phone").item_count == 0
        fresh = owner.sync_device("phone")
        assert len(fresh) == 3
        assert owner.devices.device("phone").item_count == 3
        assert owner.devices.in_sync()

    def test_sync_is_idempotent(self, world):
        loop, owner = world
        owner.attach_device("desktop")
        owner.attach_device("phone")
        owner.post_item(DataItem.photo(50_000, created_at=loop.now), device="desktop")
        loop.run_until(loop.now + 5)
        assert len(owner.sync_device("phone")) == 1
        assert owner.sync_device("phone") == []

    def test_bidirectional_sync(self, world):
        loop, owner = world
        owner.attach_device("desktop")
        owner.attach_device("phone")
        owner.post_item(DataItem.text(1000, created_at=loop.now), device="desktop")
        owner.post_item(DataItem.photo(60_000, created_at=loop.now), device="phone")
        loop.run_until(loop.now + 5)
        owner.sync_device("desktop")
        owner.sync_device("phone")
        assert owner.devices.in_sync()
        assert owner.devices.device("desktop").item_count == 2
        assert owner.devices.device("phone").item_count == 2
