"""Tests for the Mirror Manager."""

import random

import pytest

from repro.core.config import SoupConfig
from repro.core.experience import ExperienceReport
from repro.core.ranking import Recommendation
from repro.node.mirror_manager import MirrorManager


@pytest.fixture()
def manager():
    return MirrorManager(
        owner_id=1,
        config=SoupConfig(),
        capacity_profiles=10.0,
        rng=random.Random(0),
    )


def test_learn_node_and_friends(manager):
    manager.learn_node(2)
    manager.set_friend(3)
    assert 2 in manager.knowledge
    assert manager.knowledge.friends() == [3]


def test_learn_self_is_noop(manager):
    manager.learn_node(1)
    assert 1 not in manager.knowledge


def test_recommendations_only_in_bootstrap_mode(manager):
    manager.receive_recommendations([Recommendation(9, mirror=5, quality=0.8)])
    assert manager.bootstrap.recommendation_count == 1
    manager.has_experience = True
    manager.receive_recommendations([Recommendation(9, mirror=6, quality=0.8)])
    assert manager.bootstrap.recommendation_count == 1  # ignored now


def test_recommendations_for_requester_excludes_requester(manager):
    manager.announced_mirrors = [5, 6]
    recs = manager.recommendations_for(requester=5)
    assert [r.mirror for r in recs] == [6]
    assert all(r.recommender == 1 for r in recs)


def test_observation_and_drain(manager):
    manager.observe_mirror(friend=2, mirror=5, success=True)
    manager.observe_mirror(friend=2, mirror=5, success=False)
    reports = manager.drain_reports_for(2)
    assert len(reports) == 1
    assert reports[0].availability == 0.5
    assert manager.drain_reports_for(2) == []


def test_ingest_pending_reports_transitions_mode(manager):
    assert not manager.has_experience
    manager.receive_reports(
        [ExperienceReport(reporter=2, mirror=5, observations=3, availability=1.0)]
    )
    assert manager.ingest_pending_reports() == 1
    assert manager.has_experience
    assert manager.knowledge.experience_of(5) > 0


def test_build_ranking_layers(manager):
    # Experience beats recommendations beats the prior.
    manager.receive_recommendations([Recommendation(9, mirror=6, quality=0.9)])
    manager.learn_node(7)
    manager.receive_reports(
        [ExperienceReport(reporter=2, mirror=5, observations=3, availability=1.0)]
        * 5
    )
    manager.ingest_pending_reports()
    ranking = dict(manager.build_ranking([]))
    assert set(ranking) >= {5, 6, 7}
    assert ranking[5] > ranking[6] > ranking[7] or ranking[5] > ranking[7]


def test_run_selection_uses_ranking(manager):
    for node in range(2, 30):
        manager.learn_node(node)
    result = manager.run_selection()
    assert len(result.mirrors) > 0
    assert manager.selected_mirrors == result.mirrors
    assert 1 not in result.mirrors


def test_run_selection_respects_exclusions(manager):
    for node in range(2, 10):
        manager.learn_node(node)
    result = manager.run_selection(exclude=range(2, 8))
    assert all(m in (8, 9) for m in result.mirrors)


def test_commit_mirrors_updates_knowledge(manager):
    manager.learn_node(5)
    manager.commit_mirrors([5])
    assert manager.announced_mirrors == [5]
    assert manager.knowledge.get(5).is_mirror


def test_store_request_handling(manager):
    decision = manager.handle_store_request(owner=9, size_profiles=1.0, is_friend=False)
    assert decision.accepted
    assert manager.store.stores_for(9)
    assert manager.handle_withdraw(9)


def test_mirroring_disabled_rejects_storage():
    mobile = MirrorManager(
        owner_id=1,
        config=SoupConfig(),
        capacity_profiles=10.0,
        rng=random.Random(0),
        mirroring_enabled=False,
    )
    decision = mobile.handle_store_request(owner=9, size_profiles=1.0, is_friend=False)
    assert not decision.accepted
    assert decision.reason == "mirroring disabled"
    # But the mobile node still selects mirrors for its own data.
    mobile.learn_node(2)
    assert len(mobile.run_selection().mirrors) > 0
