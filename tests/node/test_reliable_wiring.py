"""Wiring tests: the reliability layer inside the middleware stack.

The unit behaviour of retries/breakers/detectors lives in
``tests/network/test_reliability.py``; here we assert the *hookup* — a
failure-detector verdict immediately repairs the mirror set, revivals
re-admit the peer, and failed directory publishes back off.
"""

import pytest

from repro.core.config import SoupConfig
from repro.dht.bootstrap import BootstrapRegistry
from repro.dht.pastry import PastryOverlay
from repro.dht.storage import DirectoryEntry
from repro.network.events import EventLoop
from repro.network.simnet import SimNetwork
from repro.node.interface_manager import InterfaceManager
from repro.node.middleware import SoupNode


class Harness:
    def __init__(self, n=8, seed=11):
        self.loop = EventLoop()
        self.network = SimNetwork(self.loop)
        self.overlay = PastryOverlay()
        self.registry = BootstrapRegistry()
        self.nodes = {}
        self.users = []
        for i in range(n):
            node = SoupNode(
                name=f"u{i}",
                network=self.network,
                overlay=self.overlay,
                registry=self.registry,
                peer_resolver=self.nodes.get,
                config=SoupConfig(),
                seed=seed + i,
                key_bits=256,
            )
            self.nodes[node.node_id] = node
            self.users.append(node)
        self.users[0].join()
        self.users[0].make_bootstrap_node()
        for node in self.users[1:]:
            node.join(bootstrap_id=self.users[0].node_id)
        self.loop.run_until(self.loop.now + 1)

    def settle(self, seconds=30.0):
        self.loop.run_until(self.loop.now + seconds)


@pytest.fixture()
def harness():
    return Harness()


def mirrored_node(harness):
    node = harness.users[3]
    for other in harness.users:
        if other is not node:
            node.contact(other.node_id)
    accepted = node.run_selection_round()
    harness.settle()
    assert accepted
    return node, accepted


def test_replica_pushes_are_acknowledged(harness):
    node, accepted = mirrored_node(harness)
    assert node.reliability.stats.acked >= len(accepted)
    assert node.reliability.pending_count() == 0


def test_dead_mirror_triggers_immediate_repair(harness):
    node, accepted = mirrored_node(harness)
    victim = accepted[0]
    node.reliability.detector.declare_dead(victim)
    # Repair ran synchronously off the detector verdict — no waiting for
    # the next periodic selection round.
    assert node.mirror_manager.repairs_triggered == 1
    assert victim in node.mirror_manager.dead_mirrors
    assert victim not in node.mirror_manager.announced_mirrors
    # The verdict sticks across later rounds.
    assert victim not in node.run_selection_round()


def test_revived_mirror_becomes_eligible_again(harness):
    node, accepted = mirrored_node(harness)
    victim = accepted[0]
    node.reliability.detector.declare_dead(victim)
    assert victim in node.mirror_manager.dead_mirrors
    node.reliability.detector.record_success(victim)
    assert victim not in node.mirror_manager.dead_mirrors


def test_repair_degrades_to_partial_set_when_pool_exhausted(harness):
    node, accepted = mirrored_node(harness)
    # Every known candidate is declared dead: repair cannot rebuild a
    # full set and must degrade to a (tracked) partial one, not stall.
    for other in harness.users:
        if other is not node:
            node.reliability.detector.declare_dead(other.node_id)
    assert node.mirror_manager.announced_mirrors == []
    assert node.mirror_manager.has_partial_set()
    assert node.mirror_manager.last_estimated_error is not None


# --- directory republish backoff ------------------------------------------


def overlay_with(members):
    overlay = PastryOverlay()
    members = sorted(members)
    for index, node_id in enumerate(members):
        overlay.join(node_id, bootstrap_id=members[0] if index else None)
    return overlay


def test_publish_backoff_defers_until_window_expires():
    loop = EventLoop()
    net = SimNetwork(loop)
    members = [0x1000, 0x8000, 0xF000]
    overlay = overlay_with(members)
    interface = InterfaceManager(0x1000, net, overlay)
    entry = DirectoryEntry(soup_id=0x8001, name="victim")
    home = overlay.route(0x1000, entry.soup_id).responsible
    overlay.set_liveness(lambda n: n != home)

    first = interface.publish_entry(entry)
    assert first is not None and not first.delivered
    # Inside the backoff window further attempts never touch the overlay.
    assert interface.publish_entry(entry) is None
    assert interface.publishes_deferred == 1
    unreachable_before = overlay.publishes_unreachable

    loop.run_until(6.0)  # base backoff is 5 s
    second = interface.publish_entry(entry)
    assert second is not None and not second.delivered
    assert overlay.publishes_unreachable == unreachable_before + 1

    # Consecutive failures double the window: 10 s now.
    loop.run_until(12.0)
    assert interface.publish_entry(entry) is None

    loop.run_until(17.0)
    overlay.set_liveness(None)
    final = interface.publish_entry(entry)
    assert final is not None and final.delivered
    # Success resets the backoff: the next publish goes straight out.
    assert interface.publish_entry(entry).delivered
