"""Tests for the Social Manager."""

import pytest

from repro.crypto.keys import KeyPair
from repro.node.security_manager import SecurityManager
from repro.node.social_manager import SocialManager


@pytest.fixture()
def social():
    keys = KeyPair.generate(bits=512, seed=1)
    return SocialManager(owner_id=keys.soup_id, security=SecurityManager(keys))


def test_request_accept_flow(social):
    social.receive_request(42)
    assert social.pending_incoming() == [42]
    key = social.accept_request(42)
    assert social.is_friend(42)
    assert social.pending_incoming() == []
    assert "friend" in key.attributes()


def test_accept_unknown_request_rejected(social):
    with pytest.raises(LookupError):
        social.accept_request(7)


def test_outgoing_confirmation(social):
    social.initiate_request(9)
    key = social.confirm_accepted(9)
    assert social.is_friend(9)
    assert "friend" in key.attributes()


def test_self_friendship_rejected(social):
    with pytest.raises(ValueError):
        social.initiate_request(social.owner_id)


def test_duplicate_requests_ignored(social):
    social.receive_request(42)
    social.accept_request(42)
    social.receive_request(42)  # already friends: no new pending entry
    assert social.pending_incoming() == []


def test_friendship_listeners_fire_once(social):
    events = []
    social.on_friendship(events.append)
    social.receive_request(42)
    social.accept_request(42)
    social.initiate_request(42)  # no-op: already friends
    assert events == [42]


def test_friend_count_and_listing(social):
    for node in (5, 3, 9):
        social.receive_request(node)
        social.accept_request(node)
    assert social.friend_count() == 3
    assert social.friends() == [3, 5, 9]
