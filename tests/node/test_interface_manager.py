"""Unit tests for the Interface Manager's traffic accounting."""

import pytest

from repro.core.objects import ObjectType, SoupObject
from repro.dht.pastry import DhtError, PastryOverlay
from repro.dht.storage import DirectoryEntry
from repro.network.events import EventLoop
from repro.network.simnet import SimNetwork
from repro.node.interface_manager import InterfaceManager


@pytest.fixture()
def setup():
    loop = EventLoop()
    network = SimNetwork(loop)
    overlay = PastryOverlay()
    ids = [0x1000 + i * 0x1111_1111_1111 for i in range(8)]
    for index, node_id in enumerate(ids):
        network.register(node_id, lambda s, m: None)
        overlay.join(node_id, bootstrap_id=ids[0] if index else None)
    return loop, network, overlay, ids


def test_publish_charges_control_meters(setup):
    loop, network, overlay, ids = setup
    interface = InterfaceManager(ids[0], network, overlay)
    entry = DirectoryEntry(soup_id=0x9999_0000_0000_0000, name="alice")
    route = interface.publish_entry(entry)
    if route.hops:
        sender_meter = network.control_meter(route.path[0])
        assert sender_meter.total_sent() > 0
    # Data meters untouched by control traffic.
    assert network.meters[ids[0]].total_sent() == 0


def test_lookup_returns_entry_and_charges(setup):
    loop, network, overlay, ids = setup
    publisher = InterfaceManager(ids[0], network, overlay)
    reader = InterfaceManager(ids[3], network, overlay)
    key = 0x7777_0000_0000_0000
    publisher.publish_entry(DirectoryEntry(soup_id=key, name="bob"))
    entry, route = reader.lookup_entry(key)
    assert entry is not None and entry.name == "bob"


def test_mobile_relay_charges_gateway(setup):
    loop, network, overlay, ids = setup
    mobile_id = 0xABCD_0000_0000_0000
    network.register(mobile_id, lambda s, m: None)
    mobile = InterfaceManager(mobile_id, network, overlay, is_mobile=True)
    mobile.set_gateway(ids[0])
    mobile.lookup_entry(0x1234)
    gateway_meter = network.control_meter(ids[0])
    assert gateway_meter.total_sent() > 0
    assert gateway_meter.total_received() > 0
    assert network.control_meter(mobile_id).total_sent() > 0


def test_mobile_without_gateway_rejected(setup):
    loop, network, overlay, ids = setup
    mobile = InterfaceManager(0xAB, network, overlay, is_mobile=True)
    with pytest.raises(DhtError):
        mobile.lookup_entry(0x1234)


def test_regular_node_cannot_set_gateway(setup):
    loop, network, overlay, ids = setup
    interface = InterfaceManager(ids[0], network, overlay)
    with pytest.raises(ValueError):
        interface.set_gateway(ids[1])


def test_send_object_uses_data_meter(setup):
    loop, network, overlay, ids = setup
    interface = InterfaceManager(ids[0], network, overlay)
    obj = SoupObject(ids[0], ids[1], ObjectType.MESSAGE, {"text": "x"})
    interface.send_object(obj)
    loop.run_until(5)
    assert network.meters[ids[0]].total_sent() == obj.size_bytes()
    assert network.meters[ids[1]].total_received() == obj.size_bytes()


def test_send_bytes_overrides_size(setup):
    loop, network, overlay, ids = setup
    interface = InterfaceManager(ids[0], network, overlay)
    obj = SoupObject(ids[0], ids[1], ObjectType.REPLICA_PUSH)
    interface.send_bytes(ids[1], obj, 1_000_000)
    loop.run_until(60)
    assert network.meters[ids[1]].total_received() == 1_000_000
