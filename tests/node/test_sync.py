"""Tests for update buffering and reconciliation (Sec. 3.5)."""

from repro.node.sync import PendingUpdate, UpdateBuffer, merge_update_streams


def update(target=1, origin=2, timestamp=0.0, sequence=0, payload="x"):
    return PendingUpdate(
        target_id=target,
        origin_id=origin,
        timestamp=timestamp,
        sequence=sequence,
        payload=payload,
    )


class TestUpdateBuffer:
    def test_add_and_collect(self):
        buffer = UpdateBuffer()
        buffer.add(update(sequence=1))
        buffer.add(update(sequence=2))
        collected = buffer.collect(1)
        assert len(collected) == 2
        assert buffer.pending_count(1) == 0

    def test_duplicates_deduplicated(self):
        buffer = UpdateBuffer()
        buffer.add(update(sequence=1))
        buffer.add(update(sequence=1))  # same origin+sequence via two paths
        assert buffer.pending_count(1) == 1

    def test_ordering_by_timestamp(self):
        buffer = UpdateBuffer()
        buffer.add(update(timestamp=5.0, sequence=2))
        buffer.add(update(timestamp=1.0, sequence=1))
        ordered = buffer.pending_for(1)
        assert [u.timestamp for u in ordered] == [1.0, 5.0]

    def test_per_target_isolation(self):
        buffer = UpdateBuffer()
        buffer.add(update(target=1, sequence=1))
        buffer.add(update(target=2, sequence=2))
        assert buffer.pending_count(1) == 1
        assert buffer.pending_count() == 2
        buffer.collect(1)
        assert buffer.pending_count(2) == 1


class TestMerge:
    def test_merge_deduplicates_across_mirrors(self):
        a = [update(sequence=1), update(sequence=2)]
        b = [update(sequence=2), update(sequence=3)]
        merged = merge_update_streams(a, b)
        assert len(merged) == 3

    def test_merge_orders_by_timestamp(self):
        a = [update(timestamp=3.0, sequence=1)]
        b = [update(timestamp=1.0, sequence=2), update(timestamp=2.0, sequence=3)]
        merged = merge_update_streams(a, b)
        assert [u.timestamp for u in merged] == [1.0, 2.0, 3.0]

    def test_merge_distinguishes_origins(self):
        a = [update(origin=10, sequence=1)]
        b = [update(origin=11, sequence=1)]
        assert len(merge_update_streams(a, b)) == 2

    def test_merge_empty(self):
        assert merge_update_streams([], []) == []


class TestUpdateBufferCap:
    def test_cap_drops_oldest_keeps_newest(self):
        buffer = UpdateBuffer(max_per_target=2)
        buffer.add(update(timestamp=1.0, sequence=1))
        buffer.add(update(timestamp=2.0, sequence=2))
        buffer.add(update(timestamp=3.0, sequence=3))
        pending = buffer.pending_for(1)
        assert [u.timestamp for u in pending] == [2.0, 3.0]
        assert buffer.dropped_updates == 1

    def test_unbounded_by_default(self):
        buffer = UpdateBuffer()
        for seq in range(1000):
            buffer.add(update(sequence=seq))
        assert buffer.pending_count(1) == 1000
        assert buffer.dropped_updates == 0

    def test_duplicate_does_not_evict(self):
        buffer = UpdateBuffer(max_per_target=2)
        buffer.add(update(timestamp=1.0, sequence=1))
        buffer.add(update(timestamp=2.0, sequence=2))
        buffer.add(update(timestamp=2.0, sequence=2))  # dedup, not overflow
        assert buffer.pending_count(1) == 2
        assert buffer.dropped_updates == 0

    def test_cap_is_per_target(self):
        buffer = UpdateBuffer(max_per_target=1)
        buffer.add(update(target=1, sequence=1))
        buffer.add(update(target=2, sequence=2))
        assert buffer.pending_count(1) == 1
        assert buffer.pending_count(2) == 1
        assert buffer.dropped_updates == 0

    def test_invalid_cap_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            UpdateBuffer(max_per_target=0)
