"""crypto_mode: by_id simulated signatures vs full RSA.

The performance escape hatch must not change the security semantics the
simulations rely on: an attacker signing an object whose ``source`` claims
someone else's identity is rejected by receivers in *both* modes, and the
directory-resolution requirement (the source's public key must be known)
holds in both modes too.
"""

import pytest

from repro.core.objects import ObjectType, SoupObject
from repro.crypto.by_id import ByIdSignature, sign_by_id, verify_by_id
from repro.crypto.keys import KeyPair
from repro.node.security_manager import SecurityManager

ALICE = KeyPair.generate(bits=256, seed=1)
MALLORY = KeyPair.generate(bits=256, seed=2)


def _update_from(source_id: int) -> SoupObject:
    return SoupObject(
        source=source_id,
        dest=0xBEEF,
        object_type=ObjectType.UPDATE,
        payload={"status": "all good"},
    )


def _verifier(mode: str) -> SecurityManager:
    """A receiving node that knows both parties' public keys."""
    receiver = SecurityManager(KeyPair.generate(bits=256, seed=3), crypto_mode=mode)
    receiver.learn_public_key(ALICE.soup_id, ALICE.public)
    receiver.learn_public_key(MALLORY.soup_id, MALLORY.public)
    return receiver


@pytest.mark.parametrize("mode", ["full", "by_id"])
def test_legitimate_object_verifies(mode):
    alice = SecurityManager(ALICE, crypto_mode=mode)
    obj = alice.sign_object(_update_from(ALICE.soup_id))
    assert _verifier(mode).verify_object(obj)


@pytest.mark.parametrize("mode", ["full", "by_id"])
def test_forged_source_is_rejected(mode):
    # Mallory crafts an update claiming to come from Alice and signs it
    # with her own manager — the only signing oracle she controls.
    mallory = SecurityManager(MALLORY, crypto_mode=mode)
    forged = mallory.sign_object(_update_from(ALICE.soup_id))
    assert not _verifier(mode).verify_object(forged)


@pytest.mark.parametrize("mode", ["full", "by_id"])
def test_tampered_payload_is_rejected(mode):
    alice = SecurityManager(ALICE, crypto_mode=mode)
    obj = alice.sign_object(_update_from(ALICE.soup_id))
    obj.payload = {"status": "send money"}
    assert not _verifier(mode).verify_object(obj)


@pytest.mark.parametrize("mode", ["full", "by_id"])
def test_unknown_sender_is_rejected(mode):
    alice = SecurityManager(ALICE, crypto_mode=mode)
    obj = alice.sign_object(_update_from(ALICE.soup_id))
    stranger = SecurityManager(KeyPair.generate(bits=256, seed=4), crypto_mode=mode)
    assert not stranger.verify_object(obj)


def test_full_mode_rejects_by_id_signatures():
    # A by_id tuple must never satisfy a full-crypto verifier — otherwise
    # by_id signatures would be trivially forgeable in full scenarios.
    obj = _update_from(ALICE.soup_id)
    obj.signature = sign_by_id(obj.signing_bytes(), ALICE.soup_id)
    assert not _verifier("full").verify_object(obj)


def test_by_id_mode_rejects_rsa_signatures():
    alice_full = SecurityManager(ALICE, crypto_mode="full")
    obj = alice_full.sign_object(_update_from(ALICE.soup_id))
    assert not _verifier("by_id").verify_object(obj)


def test_by_id_primitives():
    message = b"hello soup"
    signature = sign_by_id(message, 42)
    assert verify_by_id(message, signature, 42)
    assert not verify_by_id(message, signature, 43)
    assert not verify_by_id(b"hello sou?", signature, 42)
    assert not verify_by_id(message, "not a signature", 42)
    assert not verify_by_id(
        message, ByIdSignature(signer=42, digest=b"\x00" * 32), 42
    )


def test_invalid_mode_rejected():
    with pytest.raises(ValueError):
        SecurityManager(ALICE, crypto_mode="fast")
