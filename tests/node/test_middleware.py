"""Integration-level tests for SoupNode middleware."""

import pytest

from repro.core.config import SoupConfig
from repro.dht.bootstrap import BootstrapRegistry
from repro.dht.pastry import PastryOverlay
from repro.network.events import EventLoop
from repro.network.simnet import SimNetwork
from repro.node.middleware import SoupNode
from repro.node.profile import DataItem


class MiniSoup:
    """A small SOUP network harness for middleware tests."""

    def __init__(self, n_desktop=6, n_mobile=0, seed=5):
        self.loop = EventLoop()
        self.network = SimNetwork(self.loop)
        self.overlay = PastryOverlay()
        self.registry = BootstrapRegistry()
        self.nodes = {}
        self.users = []
        for i in range(n_desktop + n_mobile):
            node = SoupNode(
                name=f"u{i}",
                network=self.network,
                overlay=self.overlay,
                registry=self.registry,
                peer_resolver=self.nodes.get,
                config=SoupConfig(),
                seed=seed + i,
                is_mobile=i >= n_desktop,
                key_bits=256,
            )
            self.nodes[node.node_id] = node
            self.users.append(node)
        self.users[0].join()
        self.users[0].make_bootstrap_node()
        for node in self.users[1:]:
            node.join(bootstrap_id=self.users[0].node_id)
        self.loop.run_until(self.loop.now + 1)

    def settle(self, seconds=5.0):
        self.loop.run_until(self.loop.now + seconds)


@pytest.fixture(scope="module")
def net():
    return MiniSoup(n_desktop=6, n_mobile=2)


def test_all_nodes_join_and_publish(net):
    for node in net.users:
        entry = net.users[0].lookup_user(node.node_id)
        assert entry is not None
        assert entry.name == node.name


def test_mobile_nodes_not_in_overlay(net):
    for node in net.users:
        if node.is_mobile:
            assert node.node_id not in net.overlay
        else:
            assert node.node_id in net.overlay


def test_mobile_node_lookup_via_gateway(net):
    mobile = next(n for n in net.users if n.is_mobile)
    entry = mobile.lookup_user(net.users[1].node_id)
    assert entry is not None
    # The relay leg shows up on the gateway's control meter.
    gateway_meter = net.network.control_meter(mobile.interface.gateway_id)
    assert gateway_meter.total_sent() > 0


def test_befriending_exchanges_attribute_keys(net):
    a, b = net.users[1], net.users[2]
    assert a.befriend(b.node_id)
    assert a.social.is_friend(b.node_id)
    assert b.social.is_friend(a.node_id)
    assert a.security.can_decrypt_from(b.node_id)
    assert b.security.can_decrypt_from(a.node_id)


def test_friend_can_decrypt_profile_replica(net):
    a, b = net.users[1], net.users[2]
    if not a.social.is_friend(b.node_id):
        a.befriend(b.node_id)
    ciphertext = a.security.encrypt_replica(b"profile bytes")
    assert b.security.decrypt_from(a.node_id, ciphertext) == b"profile bytes"


def test_selection_round_places_replicas(net):
    node = net.users[3]
    for other in net.users:
        if other is not node:
            node.contact(other.node_id)
    accepted = node.run_selection_round()
    assert accepted
    for mirror_id in accepted:
        assert net.nodes[mirror_id].mirror_manager.store.stores_for(node.node_id)
    # The directory entry announces the accepted set.
    entry = net.users[0].lookup_user(node.node_id)
    assert set(entry.mirror_ids) == set(accepted)


def test_mobile_never_selected_as_mirror(net):
    """Mobile devices disable mirroring (Sec. 7)."""
    mobile_ids = {n.node_id for n in net.users if n.is_mobile}
    node = net.users[4]
    for other in net.users:
        if other is not node:
            node.contact(other.node_id)
    for _ in range(3):
        accepted = node.run_selection_round()
    assert not set(accepted) & mobile_ids


def test_message_to_online_friend(net):
    a, b = net.users[1], net.users[3]
    count_before = len(b.applications.messages_received())
    assert a.send_message(b.node_id, "hello")
    net.settle()
    assert len(b.applications.messages_received()) == count_before + 1


def test_message_to_offline_friend_via_mirrors(net):
    a, b = net.users[2], net.users[4]
    # b needs mirrors first.
    for other in net.users:
        if other is not b:
            b.contact(other.node_id)
    b.run_selection_round()
    b.go_offline()
    assert a.send_message(b.node_id, "offline msg")
    net.settle()
    count_before = len(b.applications.messages_received())
    b.go_online()
    net.settle()
    received = b.applications.messages_received()
    assert len(received) > count_before
    assert any(
        (o.payload or {}).get("text") == "offline msg" for o in received
    )


def test_request_profile_from_mirrors_when_owner_offline(net):
    owner = net.users[5]
    requester = net.users[1]
    if not requester.social.is_friend(owner.node_id):
        requester.befriend(owner.node_id)
    for other in net.users:
        if other is not owner:
            owner.contact(other.node_id)
    owner.post_item(DataItem.text(2000))
    owner.run_selection_round()
    owner.go_offline()
    assert requester.request_profile(owner.node_id)
    owner.go_online()


def test_experience_exchange_feeds_friend(net):
    a, b = net.users[1], net.users[2]
    # a records observations about b's mirrors, then exchanges.
    for other in net.users:
        if other is not b:
            b.contact(other.node_id)
    b.run_selection_round()
    a.request_profile(b.node_id)
    sent = a.exchange_experience_sets()
    assert sent >= 1
    assert b.mirror_manager.pending_reports
    b.mirror_manager.ingest_pending_reports()
    assert b.mirror_manager.has_experience


def test_double_join_rejected(net):
    with pytest.raises(RuntimeError):
        net.users[0].join()


def test_mobile_cannot_bootstrap(net):
    mobile = next(n for n in net.users if n.is_mobile)
    with pytest.raises(ValueError):
        mobile.make_bootstrap_node()
