"""Tests for the Security Manager."""

import pytest

from repro.core.objects import ObjectType, SoupObject
from repro.crypto.abe import AbeError
from repro.crypto.access import and_of, attr
from repro.crypto.keys import KeyPair
from repro.node.security_manager import SecurityManager


@pytest.fixture(scope="module")
def alice_keys():
    return KeyPair.generate(bits=512, seed=1)


@pytest.fixture(scope="module")
def bob_keys():
    return KeyPair.generate(bits=512, seed=2)


@pytest.fixture()
def alice(alice_keys):
    return SecurityManager(alice_keys, master_secret=b"a" * 32)


@pytest.fixture()
def bob(bob_keys):
    return SecurityManager(bob_keys, master_secret=b"b" * 32)


def test_sign_and_verify_between_nodes(alice, bob, alice_keys):
    obj = SoupObject(alice_keys.soup_id, bob.keys.soup_id, ObjectType.MESSAGE, {"t": "hi"})
    alice.sign_object(obj)
    bob.learn_public_key(alice_keys.soup_id, alice_keys.public)
    assert bob.verify_object(obj)


def test_unknown_sender_rejected(alice, bob, alice_keys):
    obj = SoupObject(alice_keys.soup_id, bob.keys.soup_id, ObjectType.MESSAGE, {"t": "hi"})
    alice.sign_object(obj)
    assert not bob.verify_object(obj)  # bob never learned alice's key


def test_unsigned_object_rejected(bob, alice_keys):
    obj = SoupObject(alice_keys.soup_id, bob.keys.soup_id, ObjectType.MESSAGE)
    assert not bob.verify_object(obj)


def test_tampered_object_rejected(alice, bob, alice_keys):
    obj = SoupObject(alice_keys.soup_id, bob.keys.soup_id, ObjectType.MESSAGE, {"t": "hi"})
    alice.sign_object(obj)
    bob.learn_public_key(alice_keys.soup_id, alice_keys.public)
    obj.payload = {"t": "forged"}
    assert not bob.verify_object(obj)


def test_friend_can_decrypt_replica(alice, bob):
    ciphertext = alice.encrypt_replica(b"alice's data")
    key = alice.issue_attribute_key(["friend"])
    bob.receive_attribute_key(alice.keys.soup_id, key)
    assert bob.decrypt_from(alice.keys.soup_id, ciphertext) == b"alice's data"
    assert bob.can_decrypt_from(alice.keys.soup_id)


def test_stranger_cannot_decrypt(alice, bob):
    ciphertext = alice.encrypt_replica(b"private")
    with pytest.raises(AbeError):
        bob.decrypt_from(alice.keys.soup_id, ciphertext)


def test_wrong_attributes_cannot_decrypt(alice, bob):
    policy = and_of(attr("friend"), attr("colleague"))
    ciphertext = alice.encrypt_replica(b"work stuff", policy)
    bob.receive_attribute_key(
        alice.keys.soup_id, alice.issue_attribute_key(["friend"])
    )
    with pytest.raises(AbeError):
        bob.decrypt_from(alice.keys.soup_id, ciphertext)


def test_custom_policy_respected(alice, bob):
    policy = and_of(attr("friend"), attr("colleague"))
    ciphertext = alice.encrypt_replica(b"work stuff", policy)
    bob.receive_attribute_key(
        alice.keys.soup_id, alice.issue_attribute_key(["friend", "colleague"])
    )
    assert bob.decrypt_from(alice.keys.soup_id, ciphertext) == b"work stuff"
