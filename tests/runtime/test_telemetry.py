"""Live sweep telemetry: heartbeat snapshots and task event streams.

Telemetry is observability-only output: it must describe the sweep
accurately (started/finished per task, done/total, failures), validate
as a regular v1 trace, keep its sequence monotonic across resumes — and
never exist when switched off.
"""

import json

import pytest

from repro.obs.trace import validate_trace_file
from repro.runtime import HEARTBEAT_SCHEMA, RunStore, SweepSpec, run_sweep
from repro.runtime import executor as executor_module


def tiny_spec(n_seeds=2) -> SweepSpec:
    return SweepSpec(
        name="telemetry-test",
        base={"scale": 0.004, "n_days": 2},
        seeds=list(range(3, 3 + n_seeds)),
    )


def read_events(run_dir):
    store = RunStore(run_dir)
    with open(store.telemetry_events_path, "r", encoding="utf-8") as handle:
        return [json.loads(line) for line in handle if line.strip()]


@pytest.mark.parametrize("jobs", [1, 2])
def test_sweep_emits_heartbeat_and_task_events(tmp_path, jobs):
    run_dir = tmp_path / "run"
    outcome = run_sweep(tiny_spec(), run_dir, jobs=jobs)
    assert outcome.complete

    store = RunStore(run_dir)
    heartbeat = store.read_heartbeat()
    assert heartbeat is not None
    assert heartbeat["schema"] == HEARTBEAT_SCHEMA
    assert heartbeat["done"] == heartbeat["total"] == 2
    assert heartbeat["failed"] == 0 and heartbeat["running"] == 0
    assert heartbeat["mean_task_seconds"] > 0
    assert heartbeat["updated_at"] > 0

    # The event stream is itself a valid v1 trace.
    assert validate_trace_file(str(store.telemetry_events_path)) == []
    events = read_events(run_dir)
    started = [e for e in events if e["event"] == "sweep_task_started"]
    finished = [e for e in events if e["event"] == "sweep_task_finished"]
    assert len(started) == len(finished) == 2
    assert {e["key"] for e in started} == {e["key"] for e in finished}
    assert all(e["status"] == "ok" and e["seconds"] >= 0 for e in finished)
    assert max(e["done"] for e in finished) == 2


def test_failed_task_is_surfaced_in_telemetry(tmp_path, monkeypatch):
    real = executor_module.execute_task

    def flaky(payload):
        if payload["overrides"].get("seed") == 3:
            raise RuntimeError("injected failure")
        return real(payload)

    monkeypatch.setattr(executor_module, "execute_task", flaky)
    run_dir = tmp_path / "run"
    outcome = run_sweep(tiny_spec(), run_dir, jobs=1)
    assert len(outcome.failed) == 1

    heartbeat = RunStore(run_dir).read_heartbeat()
    assert heartbeat["failed"] == 1 and heartbeat["done"] == 2
    failed = [
        e for e in read_events(run_dir)
        if e["event"] == "sweep_task_finished" and e["status"] == "failed"
    ]
    assert len(failed) == 1
    assert "injected failure" in failed[0]["error"]


def test_telemetry_seq_stays_monotonic_across_resume(tmp_path):
    run_dir = tmp_path / "run"
    first = run_sweep(tiny_spec(), run_dir, jobs=1, limit=1)
    assert not first.complete
    second = run_sweep(tiny_spec(), run_dir, jobs=1)
    assert second.complete
    assert second.skipped  # the resume really did skip the checkpointed task

    events = read_events(run_dir)
    seqs = [e["seq"] for e in events]
    assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
    # Both invocations contributed events to the same stream.
    finished = [e for e in events if e["event"] == "sweep_task_finished"]
    assert len(finished) == 2
    assert validate_trace_file(str(RunStore(run_dir).telemetry_events_path)) == []


def test_telemetry_can_be_disabled(tmp_path):
    run_dir = tmp_path / "run"
    outcome = run_sweep(tiny_spec(n_seeds=1), run_dir, jobs=1, telemetry=False)
    assert outcome.complete
    assert not (run_dir / "telemetry").exists()
