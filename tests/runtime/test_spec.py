"""Tests for sweep specifications: parsing, expansion, task keys."""

import json

import pytest

from repro.runtime.spec import (
    SweepSpec,
    build_config,
    coerce_value,
    parse_base_flag,
    parse_seeds,
    parse_set_flag,
    task_key,
)
from repro.sim.scenario import OnlineDistribution, ScenarioConfig


class TestFlagParsing:
    def test_coercion(self):
        assert coerce_value("3") == 3
        assert coerce_value("0.5") == 0.5
        assert coerce_value("true") is True
        assert coerce_value("off") is False
        assert coerce_value("none") is None
        assert coerce_value("facebook") == "facebook"

    def test_set_flag(self):
        key, values = parse_set_flag("altruist_fraction=0.0,0.02,0.05")
        assert key == "altruist_fraction"
        assert values == [0.0, 0.02, 0.05]

    def test_set_flag_malformed(self):
        with pytest.raises(ValueError, match="--set"):
            parse_set_flag("no-equals-sign")

    def test_base_flag(self):
        assert parse_base_flag("scale=0.01") == ("scale", 0.01)

    def test_seeds_list_and_range(self):
        assert parse_seeds("0,1,5") == [0, 1, 5]
        assert parse_seeds("0:4") == [0, 1, 2, 3]
        with pytest.raises(ValueError):
            parse_seeds("4:4")


class TestBuildConfig:
    def test_plain_fields(self):
        config = build_config({"dataset": "epinions", "scale": 0.02, "seed": 7})
        assert config.dataset == "epinions"
        assert config.seed == 7

    def test_enum_coercion(self):
        config = build_config({"online_distribution": "peerson"})
        assert config.online_distribution is OnlineDistribution.PEERSON

    def test_nested_soup_override(self):
        config = build_config({"soup.epsilon": 0.02})
        assert config.soup.epsilon == 0.02

    def test_nested_activity_override(self):
        config = build_config({"activity.peak_per_day": 10.0})
        assert config.activity.peak_per_day == 10.0

    def test_unknown_field_lists_valid_ones(self):
        with pytest.raises(ValueError, match="valid fields"):
            build_config({"does_not_exist": 1})

    def test_unknown_nested_field(self):
        with pytest.raises(ValueError, match="soup"):
            build_config({"soup.nonsense": 1})

    def test_bad_value_fails_at_build_time(self):
        # The satellite contract: bad grids die at spec expansion, not
        # mid-run — ScenarioConfig.validate() fires on construction.
        with pytest.raises(ValueError, match="scale"):
            build_config({"scale": 0})
        with pytest.raises(ValueError, match="n_days"):
            build_config({"n_days": -1})
        with pytest.raises(ValueError, match="altruist"):
            build_config({"altruist_fraction": 1.5})


class TestExpansion:
    def test_grid_cross_seeds(self):
        spec = SweepSpec(
            base={"scale": 0.01},
            grid={"dataset": ["facebook", "epinions"]},
            seeds=[0, 1],
        )
        tasks = spec.expand()
        assert len(tasks) == 4
        assert [t.overrides["dataset"] for t in tasks] == [
            "facebook", "facebook", "epinions", "epinions",
        ]
        assert [t.seed for t in tasks] == [0, 1, 0, 1]
        assert [t.index for t in tasks] == [0, 1, 2, 3]

    def test_expansion_is_deterministic(self):
        spec = SweepSpec(
            grid={"altruist_fraction": [0.0, 0.05], "scale": [0.01]}, seeds=[1, 2]
        )
        first = [(t.key, t.overrides) for t in spec.expand()]
        second = [(t.key, t.overrides) for t in spec.expand()]
        assert first == second

    def test_explicit_configs_crossed_with_seeds(self):
        spec = SweepSpec(
            configs=[{"slander_fraction": 0.5}, {"sybil_fraction": 0.5}],
            seeds=[3],
        )
        tasks = spec.expand()
        assert len(tasks) == 2
        assert tasks[0].overrides["slander_fraction"] == 0.5
        assert tasks[1].overrides["sybil_fraction"] == 0.5

    def test_bad_grid_value_fails_at_expansion(self):
        spec = SweepSpec(grid={"scale": [0.01, -1.0]})
        with pytest.raises(ValueError, match="scale"):
            spec.expand()

    def test_duplicate_tasks_rejected(self):
        spec = SweepSpec(configs=[{}, {}], seeds=[0])
        with pytest.raises(ValueError, match="duplicate"):
            spec.expand()

    def test_empty_expansion_rejected(self):
        with pytest.raises(ValueError, match="seeds"):
            SweepSpec.from_mapping({"seeds": []})


class TestTaskKeys:
    def test_key_depends_on_config_not_position(self):
        a = SweepSpec(grid={"dataset": ["facebook", "epinions"]}, seeds=[0])
        b = SweepSpec(grid={"dataset": ["epinions", "facebook"]}, seeds=[0])
        keys_a = {t.overrides["dataset"]: t.key for t in a.expand()}
        keys_b = {t.overrides["dataset"]: t.key for t in b.expand()}
        assert keys_a == keys_b

    def test_key_changes_with_any_field(self):
        base = task_key(ScenarioConfig(seed=0))
        assert task_key(ScenarioConfig(seed=1)) != base
        assert task_key(ScenarioConfig(scale=0.03)) != base
        assert task_key(ScenarioConfig(soup=None or ScenarioConfig().soup)) == base

    def test_key_covers_nested_knobs(self):
        plain = task_key(build_config({}))
        tweaked = task_key(build_config({"soup.epsilon": 0.02}))
        assert plain != tweaked


class TestSpecFiles:
    def test_json_round_trip(self, tmp_path):
        spec = SweepSpec(
            name="fig8",
            base={"scale": 0.01, "n_days": 26},
            grid={"altruist_fraction": [0.0, 0.05]},
            seeds=[5, 6],
        )
        path = tmp_path / "fig8.json"
        path.write_text(json.dumps(spec.to_mapping()))
        loaded = SweepSpec.from_file(path)
        assert loaded.to_mapping() == spec.to_mapping()
        assert loaded.spec_hash() == spec.spec_hash()

    def test_toml_spec(self, tmp_path):
        path = tmp_path / "sweep.toml"
        path.write_text(
            'name = "altruism"\n'
            "seeds = [5, 6]\n"
            "[base]\n"
            'dataset = "facebook"\n'
            "scale = 0.01\n"
            "[grid]\n"
            "altruist_fraction = [0.0, 0.02]\n"
        )
        spec = SweepSpec.from_file(path)
        assert spec.name == "altruism"
        assert spec.grid == {"altruist_fraction": [0.0, 0.02]}
        assert len(spec.expand()) == 4

    def test_file_name_used_when_unnamed(self, tmp_path):
        path = tmp_path / "my-sweep.json"
        path.write_text("{}")
        assert SweepSpec.from_file(path).name == "my-sweep"

    def test_unknown_spec_key_rejected(self):
        with pytest.raises(ValueError, match="unknown sweep spec key"):
            SweepSpec.from_mapping({"grids": {}})
