"""Tests for the crash-safe run-directory store."""

import json

import pytest

from repro.runtime.spec import SweepSpec
from repro.runtime.store import (
    ARTIFACT_SCHEMA,
    MANIFEST_SCHEMA,
    RunStore,
    atomic_write_json,
)


def tiny_tasks():
    spec = SweepSpec(
        name="tiny",
        base={"scale": 0.004, "n_days": 1},
        grid={"altruist_fraction": [0.0, 0.02]},
        seeds=[3],
    )
    return spec, spec.expand()


def artifact_for(task, payload=None):
    return {
        "schema": ARTIFACT_SCHEMA,
        "task": {"id": task.task_id, "key": task.key, "overrides": task.overrides},
        "summary": {"availability_steady": 0.9},
        "result": payload or {},
        "metrics_state": {},
    }


class TestAtomicWrite:
    def test_writes_sorted_json_with_trailing_newline(self, tmp_path):
        path = tmp_path / "doc.json"
        atomic_write_json(path, {"b": 2, "a": 1})
        text = path.read_text()
        assert text == '{\n  "a": 1,\n  "b": 2\n}\n'

    def test_no_temp_file_debris(self, tmp_path):
        path = tmp_path / "doc.json"
        atomic_write_json(path, {"x": 1})
        atomic_write_json(path, {"x": 2})
        assert [p.name for p in tmp_path.iterdir()] == ["doc.json"]
        assert json.loads(path.read_text()) == {"x": 2}

    def test_unserializable_leaves_no_file(self, tmp_path):
        path = tmp_path / "doc.json"
        with pytest.raises(TypeError):
            atomic_write_json(path, {"x": object()})
        assert list(tmp_path.iterdir()) == []


class TestManifest:
    def test_initialize_and_load(self, tmp_path):
        spec, tasks = tiny_tasks()
        store = RunStore(tmp_path / "run")
        store.initialize(spec, tasks)
        manifest = store.load_manifest()
        assert manifest["schema"] == MANIFEST_SCHEMA
        assert manifest["name"] == "tiny"
        assert manifest["spec_hash"] == spec.spec_hash()
        assert [entry["key"] for entry in manifest["tasks"]] == [t.key for t in tasks]
        assert all(entry["status"] == "pending" for entry in manifest["tasks"])

    def test_load_missing_is_none(self, tmp_path):
        assert RunStore(tmp_path / "nowhere").load_manifest() is None

    def test_load_rejects_foreign_schema(self, tmp_path):
        store = RunStore(tmp_path)
        atomic_write_json(store.manifest_path, {"schema": "something/v9"})
        with pytest.raises(ValueError, match="unsupported manifest schema"):
            store.load_manifest()

    def test_finalize_records_statuses(self, tmp_path):
        spec, tasks = tiny_tasks()
        store = RunStore(tmp_path)
        store.initialize(spec, tasks)
        store.finalize(
            {
                tasks[0].key: {"status": "ok"},
                tasks[1].key: {"status": "failed", "error": "boom"},
            }
        )
        by_key = {e["key"]: e for e in store.load_manifest()["tasks"]}
        assert by_key[tasks[0].key]["status"] == "ok"
        assert by_key[tasks[1].key] == {
            "id": tasks[1].task_id,
            "key": tasks[1].key,
            "overrides": tasks[1].overrides,
            "status": "failed",
            "error": "boom",
        }

    def test_reinitialize_preserves_artifacts(self, tmp_path):
        spec, tasks = tiny_tasks()
        store = RunStore(tmp_path)
        store.initialize(spec, tasks)
        store.write_artifact(tasks[0], artifact_for(tasks[0]))
        store.initialize(spec, tasks)  # e.g. a resumed invocation
        assert store.completed_keys() == {tasks[0].key}


class TestArtifacts:
    def test_round_trip(self, tmp_path):
        spec, tasks = tiny_tasks()
        store = RunStore(tmp_path)
        store.initialize(spec, tasks)
        store.write_artifact(tasks[0], artifact_for(tasks[0], {"seed": 3}))
        payload = store.read_artifact(tasks[0].key)
        assert payload["result"] == {"seed": 3}
        assert store.completed_keys() == {tasks[0].key}

    def test_write_rejects_mislabeled_artifact(self, tmp_path):
        spec, tasks = tiny_tasks()
        store = RunStore(tmp_path)
        store.initialize(spec, tasks)
        wrong = artifact_for(tasks[1])  # self-identifies with the other key
        with pytest.raises(ValueError, match="self-identify"):
            store.write_artifact(tasks[0], wrong)
        no_schema = artifact_for(tasks[0])
        del no_schema["schema"]
        with pytest.raises(ValueError, match="schema"):
            store.write_artifact(tasks[0], no_schema)

    def test_corrupt_artifact_treated_as_missing(self, tmp_path):
        spec, tasks = tiny_tasks()
        store = RunStore(tmp_path)
        store.initialize(spec, tasks)
        store.write_artifact(tasks[0], artifact_for(tasks[0]))
        store.artifact_path(tasks[0].key).write_text('{"schema": "soup-swee')
        assert store.read_artifact(tasks[0].key) is None
        assert store.completed_keys() == set()

    def test_foreign_or_misfiled_artifact_not_counted(self, tmp_path):
        spec, tasks = tiny_tasks()
        store = RunStore(tmp_path)
        store.initialize(spec, tasks)
        # A valid artifact copied under the wrong file name must not mark
        # that other task complete.
        misfiled = artifact_for(tasks[0])
        atomic_write_json(store.artifact_path(tasks[1].key), misfiled)
        assert store.read_artifact(tasks[1].key) is None
        assert store.completed_keys() == set()
