"""Graceful-shutdown contract of the sweep executor.

A sweep stopped by Ctrl-C or SIGTERM must not leave a corrupt run
directory behind: telemetry is flushed (one final ``sweep_interrupted``
event plus a last valid heartbeat with ``interrupted: true``), the
manifest is finalized, and ``soup sweep --resume`` on the same directory
executes exactly the missing tasks with byte-identical artifacts.
"""

import hashlib
import json
import os
import signal
import subprocess
import sys
import textwrap
import time

from repro.obs.trace import validate_trace_file
from repro.runtime import RunStore, SweepSpec, run_sweep
from repro.runtime import executor as executor_module


def tiny_spec(name="interrupt-test", n_seeds=2) -> SweepSpec:
    return SweepSpec(
        name=name,
        base={"scale": 0.004, "n_days": 2},
        grid={"altruist_fraction": [0.0, 0.02]},
        seeds=list(range(3, 3 + n_seeds)),
    )


def artifact_hashes(run_dir) -> dict:
    store = RunStore(run_dir)
    return {
        key: hashlib.sha256(store.artifact_path(key).read_bytes()).hexdigest()
        for key in store.completed_keys()
    }


def read_events(run_dir):
    store = RunStore(run_dir)
    with open(store.telemetry_events_path, "r", encoding="utf-8") as handle:
        return [json.loads(line) for line in handle if line.strip()]


def assert_clean_checkpoint(run_dir, *, expect_done: int) -> None:
    """The invariants every interrupted run directory must satisfy."""
    store = RunStore(run_dir)
    heartbeat = store.read_heartbeat()
    assert heartbeat is not None, "final heartbeat must be valid JSON"
    assert heartbeat["interrupted"] is True
    assert heartbeat["done"] == expect_done
    # The event stream is still a schema-valid v1 trace and records the stop.
    assert validate_trace_file(str(store.telemetry_events_path)) == []
    events = read_events(run_dir)
    stops = [e for e in events if e["event"] == "sweep_interrupted"]
    assert len(stops) == 1
    assert stops[0]["reason"] == "signal"
    assert stops[0]["total"] == 4


def test_keyboard_interrupt_serial_is_resumable(tmp_path, monkeypatch):
    real = executor_module.execute_task
    calls = {"n": 0}

    def interrupting(payload):
        calls["n"] += 1
        if calls["n"] == 3:
            raise KeyboardInterrupt
        return real(payload)

    monkeypatch.setattr(executor_module, "execute_task", interrupting)
    run_dir = tmp_path / "run"
    outcome = run_sweep(tiny_spec(), run_dir, jobs=1)
    assert outcome.interrupted
    assert not outcome.complete
    assert len(outcome.executed) == 2 and not outcome.failed
    assert_clean_checkpoint(run_dir, expect_done=2)

    # Resume executes exactly the two missing tasks, byte-identical to a
    # never-interrupted reference run.
    monkeypatch.setattr(executor_module, "execute_task", real)
    second = run_sweep(tiny_spec(), run_dir, jobs=1)
    assert second.complete and not second.interrupted
    assert len(second.executed) == 2 and len(second.skipped) == 2
    reference = run_sweep(tiny_spec(), tmp_path / "reference", jobs=1)
    assert reference.complete
    assert artifact_hashes(run_dir) == artifact_hashes(tmp_path / "reference")


def test_keyboard_interrupt_pool_shuts_down_workers(tmp_path, monkeypatch):
    # Inject the interrupt into the scheduler loop itself: the pool path
    # must cancel queued futures, terminate workers, and still checkpoint.
    real_wait = executor_module.wait
    calls = {"n": 0}

    def interrupting_wait(*args, **kwargs):
        calls["n"] += 1
        if calls["n"] == 1:
            raise KeyboardInterrupt
        return real_wait(*args, **kwargs)

    monkeypatch.setattr(executor_module, "wait", interrupting_wait)
    run_dir = tmp_path / "run"
    outcome = run_sweep(tiny_spec(), run_dir, jobs=2)
    assert outcome.interrupted
    assert not outcome.complete
    assert_clean_checkpoint(run_dir, expect_done=0)
    # In-flight tasks are recorded as interrupted, not failed.
    manifest = json.loads(RunStore(run_dir).manifest_path.read_text())
    statuses = {t["status"] for t in manifest["tasks"]}
    assert "interrupted" in statuses and "failed" not in statuses

    monkeypatch.setattr(executor_module, "wait", real_wait)
    second = run_sweep(tiny_spec(), run_dir, jobs=2)
    assert second.complete
    assert len(second.executed) == 4


SIGTERM_DRIVER = textwrap.dedent(
    """
    import sys
    from repro.runtime import SweepSpec, run_sweep

    spec = SweepSpec(
        name="sigterm-test",
        base={"scale": 0.004, "n_days": 2},
        grid={"altruist_fraction": [0.0, 0.02]},
        seeds=[3, 4, 5, 6],
    )

    def progress(event, task, detail):
        print(event, task.task_id, flush=True)

    outcome = run_sweep(spec, sys.argv[1], jobs=1, progress=progress)
    sys.exit(130 if outcome.interrupted else 0)
    """
)


def test_sigterm_kills_worker_but_leaves_valid_checkpoint(tmp_path):
    """Send a real SIGTERM to a sweeping process mid-run; the directory it
    leaves behind must resume cleanly."""
    run_dir = tmp_path / "run"
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(executor_module.__file__), "..", "..")
    env["PYTHONPATH"] = os.path.abspath(src)
    proc = subprocess.Popen(
        [sys.executable, "-c", SIGTERM_DRIVER, str(run_dir)],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
        env=env,
    )
    # Wait until at least one task has finished so the interrupt lands
    # mid-sweep, then terminate politely (what CI runners send).
    deadline = time.time() + 60
    while time.time() < deadline:
        line = proc.stdout.readline()
        if line.startswith("ok"):
            break
    else:  # pragma: no cover - diagnostic path
        proc.kill()
        raise AssertionError("sweep produced no finished task within 60s")
    proc.send_signal(signal.SIGTERM)
    returncode = proc.wait(timeout=60)
    proc.stdout.close()

    if returncode == 0:  # pragma: no cover - all 8 tasks beat the signal
        return
    assert returncode == 130

    store = RunStore(run_dir)
    heartbeat = store.read_heartbeat()
    assert heartbeat is not None and heartbeat["interrupted"] is True
    assert validate_trace_file(str(store.telemetry_events_path)) == []
    done_before = len(store.completed_keys())
    assert done_before >= 1

    # The checkpoint resumes: only the missing tasks run.
    spec = SweepSpec(
        name="sigterm-test",
        base={"scale": 0.004, "n_days": 2},
        grid={"altruist_fraction": [0.0, 0.02]},
        seeds=[3, 4, 5, 6],
    )
    outcome = run_sweep(spec, run_dir, jobs=1)
    assert outcome.complete and not outcome.interrupted
    assert len(outcome.skipped) == done_before
    assert len(outcome.executed) == 8 - done_before
