"""Tests for sweep aggregation: cell grouping, stats, label rendering."""

import json

import pytest

from repro.runtime.aggregate import (
    SweepCell,
    TaskRecord,
    aggregate,
    aggregate_json,
    load_records,
    results_by_label,
)
from repro.sim.reporting import sweep_table


def record(task_id, overrides, summary):
    return TaskRecord(
        task_id=task_id, key=task_id, overrides=overrides, summary=summary
    )


def fig8_like_records():
    """Two altruist fractions x two seeds, hand-built summaries."""
    return [
        record("t0", {"altruist_fraction": 0.0, "seed": 1},
               {"availability_steady": 0.90, "replicas_steady": 6.0}),
        record("t1", {"altruist_fraction": 0.0, "seed": 2},
               {"availability_steady": 0.92, "replicas_steady": 6.2}),
        record("t2", {"altruist_fraction": 0.05, "seed": 1},
               {"availability_steady": 0.95, "replicas_steady": 4.0}),
        record("t3", {"altruist_fraction": 0.05, "seed": 2},
               {"availability_steady": 0.97, "replicas_steady": 4.2}),
    ]


class TestGrouping:
    def test_cells_split_on_everything_but_seed(self):
        cells = aggregate(fig8_like_records())
        assert [cell.label for cell in cells] == [
            "altruist_fraction=0.0",
            "altruist_fraction=0.05",
        ]
        assert all(cell.seeds == [1, 2] for cell in cells)
        assert cells[0].overrides == {"altruist_fraction": 0.0}

    def test_defaults_label(self):
        (cell,) = aggregate([record("t0", {"seed": 7}, {"m": 1.0})])
        assert cell.label == "(defaults)"
        assert cell.overrides == {}

    def test_first_appearance_order_preserved(self):
        records = list(reversed(fig8_like_records()))
        cells = aggregate(records)
        assert [cell.label for cell in cells] == [
            "altruist_fraction=0.05",
            "altruist_fraction=0.0",
        ]


class TestStats:
    def test_mean_and_percentiles(self):
        cells = aggregate(fig8_like_records())
        stats = cells[0].stats()["availability_steady"]
        assert stats["n"] == 2.0
        assert stats["mean"] == pytest.approx(0.91)
        assert stats["min"] == 0.90 and stats["max"] == 0.92
        assert stats["p50"] == pytest.approx(0.91, abs=0.011)

    def test_ragged_summaries(self):
        # A metric present in only some seeds is reduced over those seeds.
        cells = aggregate([
            record("t0", {"seed": 1}, {"m": 1.0, "extra": 5.0}),
            record("t1", {"seed": 2}, {"m": 3.0}),
        ])
        stats = cells[0].stats()
        assert stats["m"]["mean"] == 2.0
        assert stats["extra"]["n"] == 1.0


class TestRendering:
    def test_sweep_table_shows_spread_for_multi_seed(self):
        cells = aggregate(fig8_like_records())
        lines = sweep_table(cells, metrics=("availability_steady",))
        text = "\n".join(lines)
        assert "altruist_fraction=0.05" in text
        assert "[" in text  # p10/p90 spread rendered when n > 1
        single = aggregate([record("t0", {"seed": 1}, {"availability_steady": 0.9})])
        assert "[" not in "\n".join(sweep_table(single, metrics=("availability_steady",)))

    def test_sweep_table_missing_metric_dash(self):
        cells = aggregate([record("t0", {"seed": 1}, {"other": 1.0})])
        assert any("-" in line for line in sweep_table(cells, metrics=("absent",)))

    def test_aggregate_json_shape(self):
        payload = json.loads(aggregate_json(aggregate(fig8_like_records())))
        assert [entry["label"] for entry in payload] == [
            "altruist_fraction=0.0",
            "altruist_fraction=0.05",
        ]
        assert payload[0]["seeds"] == [1, 2]
        assert payload[0]["stats"]["replicas_steady"]["mean"] == pytest.approx(6.1)

    def test_results_by_label_disambiguates_seeds(self):
        records = fig8_like_records()
        for rec in records:
            rec._result = object()  # pre-seed the lazy cache; no deserialization
        named = results_by_label(records)
        assert set(named) == {
            "altruist_fraction=0.0 seed=1",
            "altruist_fraction=0.0 seed=2",
            "altruist_fraction=0.05 seed=1",
            "altruist_fraction=0.05 seed=2",
        }

    def test_results_by_label_single_seed_keeps_plain_labels(self):
        records = fig8_like_records()[::2]  # seed=1 only
        for rec in records:
            rec._result = object()
        assert set(results_by_label(records)) == {
            "altruist_fraction=0.0",
            "altruist_fraction=0.05",
        }


class TestLoadRecords:
    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_records(tmp_path)
