"""Determinism and resume contracts of the sweep executor.

These are the acceptance tests the orchestrator exists to pass:

* ``jobs=N`` produces byte-identical artifacts to the in-process
  ``jobs=1`` reference path;
* a partially-complete run directory resumes by executing exactly the
  missing tasks, reproducing their artifacts byte-for-byte.
"""

import hashlib

import pytest

from repro.obs import get_tracer
from repro.runtime import RunStore, SweepSpec, run_sweep


def tiny_spec() -> SweepSpec:
    # 4 tasks, each well under a second: 2 altruist fractions x 2 seeds.
    return SweepSpec(
        name="exec-test",
        base={"scale": 0.004, "n_days": 2},
        grid={"altruist_fraction": [0.0, 0.02]},
        seeds=[3, 4],
    )


def artifact_hashes(run_dir) -> dict:
    store = RunStore(run_dir)
    return {
        key: hashlib.sha256(store.artifact_path(key).read_bytes()).hexdigest()
        for key in store.completed_keys()
    }


def test_serial_sweep_completes(tmp_path):
    spec = tiny_spec()
    outcome = run_sweep(spec, tmp_path / "run", jobs=1)
    assert outcome.complete
    assert not outcome.failed
    assert len(outcome.executed) == 4
    assert outcome.skipped == []
    # Artifacts carry real results and merged metrics made it back.
    store = RunStore(tmp_path / "run")
    payload = store.read_artifact(outcome.executed[0])
    assert 0.0 < payload["summary"]["availability_steady"] <= 1.0
    assert outcome.metrics.state_dict()["counters"]


def test_parallel_artifacts_byte_identical_to_serial(tmp_path):
    spec = tiny_spec()
    serial = run_sweep(spec, tmp_path / "serial", jobs=1)
    parallel = run_sweep(spec, tmp_path / "parallel", jobs=4)
    assert serial.complete and parallel.complete
    serial_hashes = artifact_hashes(tmp_path / "serial")
    parallel_hashes = artifact_hashes(tmp_path / "parallel")
    assert set(serial_hashes) == set(parallel_hashes)
    assert serial_hashes == parallel_hashes, (
        "--jobs 4 artifacts diverge from the --jobs 1 reference"
    )


def test_profile_phases_collects_and_merges_worker_timings(tmp_path):
    spec = tiny_spec()
    serial = run_sweep(spec, tmp_path / "serial", jobs=1, profile_phases=True)
    parallel = run_sweep(
        spec, tmp_path / "parallel", jobs=2, profile_phases=True
    )
    for outcome in (serial, parallel):
        assert outcome.complete
        totals = outcome.phases.totals()
        assert totals.get("engine.epoch", 0.0) > 0.0
        assert totals.get("runtime.task", 0.0) > 0.0
    # Wall times are host timing, but span *counts* are determined by the
    # simulated work — identical regardless of worker count or order.
    assert serial.phases.counts() == parallel.phases.counts()
    # Each artifact carries its worker's mergeable state.
    store = RunStore(tmp_path / "serial")
    payload = store.read_artifact(serial.executed[0])
    assert payload["phases"]["counts"]


def test_profile_phases_off_keeps_artifacts_unchanged(tmp_path):
    spec = tiny_spec()
    plain = run_sweep(spec, tmp_path / "plain", jobs=1)
    profiled = run_sweep(
        spec, tmp_path / "profiled", jobs=1, profile_phases=True
    )
    assert plain.complete and profiled.complete
    store = RunStore(tmp_path / "plain")
    payload = store.read_artifact(plain.executed[0])
    assert "phases" not in payload
    assert plain.phases.totals() == {}


def test_resume_runs_exactly_the_missing_tasks(tmp_path):
    spec = tiny_spec()
    run_dir = tmp_path / "run"
    first = run_sweep(spec, run_dir, jobs=1)
    assert first.complete
    original_hashes = artifact_hashes(run_dir)

    # Simulate a killed sweep: delete half the checkpointed artifacts.
    store = RunStore(run_dir)
    all_keys = sorted(original_hashes)
    deleted, kept = all_keys[: len(all_keys) // 2], all_keys[len(all_keys) // 2 :]
    for key in deleted:
        store.artifact_path(key).unlink()

    second = run_sweep(spec, run_dir, jobs=1)
    assert second.complete
    assert sorted(second.executed) == deleted
    assert sorted(second.skipped) == kept
    # The re-executed artifacts are byte-identical to the originals.
    assert artifact_hashes(run_dir) == original_hashes

    # A third invocation finds nothing to do.
    third = run_sweep(spec, run_dir, jobs=1)
    assert third.executed == [] and len(third.skipped) == 4


def test_limit_leaves_remainder_pending(tmp_path):
    spec = tiny_spec()
    run_dir = tmp_path / "run"
    partial = run_sweep(spec, run_dir, jobs=1, limit=1)
    assert not partial.complete
    assert len(partial.executed) == 1
    by_key = {e["key"]: e["status"] for e in RunStore(run_dir).load_manifest()["tasks"]}
    assert sorted(by_key.values()) == ["ok", "pending", "pending", "pending"]

    finish = run_sweep(spec, run_dir, jobs=1)
    assert finish.complete
    assert len(finish.executed) == 3 and len(finish.skipped) == 1


def test_failure_recorded_and_sweep_continues(tmp_path):
    # altruist_join_day far beyond n_days is valid config-wise but the
    # point here is an executor-level failure: use an unknown dataset,
    # which only explodes inside the worker when the graph is generated.
    spec = SweepSpec(
        name="partial-fail",
        base={"scale": 0.004, "n_days": 1},
        grid={"dataset": ["facebook", "no-such-dataset"]},
        seeds=[3],
    )
    outcome = run_sweep(spec, tmp_path / "run", jobs=1)
    assert not outcome.complete
    assert len(outcome.executed) == 1
    assert len(outcome.failed) == 1
    (message,) = outcome.failed.values()
    assert "no-such-dataset" in message
    statuses = {e["status"] for e in RunStore(tmp_path / "run").load_manifest()["tasks"]}
    assert statuses == {"ok", "failed"}


def test_sweep_leaves_caller_tracer_untouched(tmp_path):
    before = get_tracer()
    run_sweep(
        SweepSpec(name="tracer", base={"scale": 0.004, "n_days": 1}, seeds=[3]),
        tmp_path / "run",
        jobs=1,
    )
    assert get_tracer() is before


def test_jobs_validation(tmp_path):
    spec = tiny_spec()
    with pytest.raises(ValueError, match="jobs"):
        run_sweep(spec, tmp_path / "run", jobs=0)
    with pytest.raises(ValueError, match="limit"):
        run_sweep(spec, tmp_path / "run", jobs=1, limit=-1)
