"""Tests for the synthetic dataset generators (Table 3)."""

import pytest

from repro.graphs.datasets import DATASET_SPECS, generate_dataset, table3_rows


def test_specs_match_table3():
    assert DATASET_SPECS["facebook"].nodes == 90_269
    assert DATASET_SPECS["facebook"].edges == 3_646_662
    assert DATASET_SPECS["epinions"].nodes == 75_879
    assert DATASET_SPECS["epinions"].edges == 508_837
    assert DATASET_SPECS["slashdot"].nodes == 82_169
    assert DATASET_SPECS["slashdot"].edges == 948_464


def test_average_degrees_match_table3():
    assert DATASET_SPECS["facebook"].average_degree == pytest.approx(40.40, abs=0.01)
    assert DATASET_SPECS["epinions"].average_degree == pytest.approx(6.71, abs=0.01)
    assert DATASET_SPECS["slashdot"].average_degree == pytest.approx(11.54, abs=0.01)


@pytest.mark.parametrize("name", sorted(DATASET_SPECS))
def test_generated_graph_matches_scaled_counts(name):
    spec = DATASET_SPECS[name]
    graph = generate_dataset(name, scale=0.01, seed=3)
    assert graph.number_of_nodes() == round(spec.nodes * 0.01)
    assert graph.number_of_edges() == round(spec.undirected_edges * 0.01)


def test_degree_heterogeneity_preserved():
    """Epinions must be much sparser than Facebook (the paper's reason for
    choosing it: 17 % of Facebook's average degree)."""
    fb = generate_dataset("facebook", scale=0.01, seed=0)
    ep = generate_dataset("epinions", scale=0.01, seed=0)
    fb_deg = 2 * fb.number_of_edges() / fb.number_of_nodes()
    ep_deg = 2 * ep.number_of_edges() / ep.number_of_nodes()
    assert ep_deg / fb_deg == pytest.approx(6.71 / 40.40, rel=0.15)


def test_heavy_tailed_degrees():
    graph = generate_dataset("facebook", scale=0.01, seed=1)
    degrees = sorted((d for _, d in graph.degree()), reverse=True)
    # Hubs exist: the max degree is far above the mean.
    mean = sum(degrees) / len(degrees)
    assert degrees[0] > 4 * mean


def test_deterministic_per_seed():
    a = generate_dataset("epinions", scale=0.005, seed=9)
    b = generate_dataset("epinions", scale=0.005, seed=9)
    assert set(a.edges) == set(b.edges)
    c = generate_dataset("epinions", scale=0.005, seed=10)
    assert set(a.edges) != set(c.edges)


def test_metadata_attached():
    graph = generate_dataset("slashdot", scale=0.005, seed=0)
    assert graph.graph["dataset"] == "slashdot"
    assert graph.graph["scale"] == 0.005


def test_no_isolated_nodes_from_trimming():
    graph = generate_dataset("epinions", scale=0.01, seed=2)
    assert min(d for _, d in graph.degree()) >= 1


def test_unknown_dataset_rejected():
    with pytest.raises(KeyError):
        generate_dataset("myspace")


def test_invalid_scale_rejected():
    with pytest.raises(ValueError):
        generate_dataset("facebook", scale=0.0)
    with pytest.raises(ValueError):
        generate_dataset("facebook", scale=1.5)


def test_table3_rows_full_scale():
    rows = table3_rows(scale=1.0)
    by_name = {row[0]: row for row in rows}
    assert by_name["facebook"] == ("facebook", 90_269, 3_646_662, 40.40)
    assert by_name["epinions"][3] == 6.71


def test_table3_rows_scaled_measures_generated_graphs():
    rows = table3_rows(scale=0.01, seed=1)
    by_name = {row[0]: row for row in rows}
    # Directed-edge convention: reported degree ~ the full-scale value.
    assert by_name["facebook"][3] == pytest.approx(40.4, rel=0.05)
    assert by_name["epinions"][3] == pytest.approx(6.71, rel=0.1)
