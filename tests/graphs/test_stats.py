"""Tests for graph statistics."""

import networkx as nx
import pytest

from repro.graphs.datasets import generate_dataset
from repro.graphs.stats import degree_ccdf, graph_stats


def test_stats_on_known_graph():
    graph = nx.complete_graph(5)
    stats = graph_stats(graph)
    assert stats.nodes == 5
    assert stats.edges == 10
    assert stats.average_degree == 4.0
    assert stats.median_degree == 4.0
    assert stats.max_degree == 4
    assert stats.degree_gini == pytest.approx(0.0, abs=1e-9)
    assert stats.clustering_sample == 1.0


def test_gini_detects_heterogeneity():
    star = graph_stats(nx.star_graph(20))
    ring = graph_stats(nx.cycle_graph(21))
    assert star.degree_gini > ring.degree_gini


def test_as_row_matches_table3_view():
    graph = nx.complete_graph(4)
    assert graph_stats(graph).as_row() == (4, 6, 3.0)


def test_clustering_sampled_for_large_graphs():
    graph = generate_dataset("epinions", scale=0.02, seed=0)
    stats = graph_stats(graph, clustering_sample_size=100, seed=1)
    assert 0.0 <= stats.clustering_sample <= 1.0


def test_degree_ccdf_monotone():
    graph = generate_dataset("epinions", scale=0.005, seed=0)
    ccdf = degree_ccdf(graph)
    fractions = [f for _, f in ccdf]
    assert fractions == sorted(fractions, reverse=True)
    assert fractions[0] == 1.0


def test_degree_ccdf_empty_graph():
    assert degree_ccdf(nx.Graph()) == []
