"""Tests for graph down-sampling."""

import networkx as nx
import pytest

from repro.graphs.datasets import generate_dataset
from repro.graphs.sampling import largest_component, sample_subgraph


def test_sample_reaches_target_size():
    graph = generate_dataset("epinions", scale=0.02, seed=0)
    sample = sample_subgraph(graph, target_nodes=300, seed=1)
    assert 150 <= sample.number_of_nodes() <= 300


def test_sample_is_connected():
    graph = generate_dataset("facebook", scale=0.01, seed=0)
    sample = sample_subgraph(graph, target_nodes=200, seed=1)
    assert nx.is_connected(sample)


def test_sample_preserves_hubs():
    """Random-walk sampling is hub-biased: the sample keeps high-degree
    structure a uniform node sample would destroy."""
    graph = generate_dataset("facebook", scale=0.02, seed=0)
    sample = sample_subgraph(graph, target_nodes=400, seed=1)
    sample_max = max(d for _, d in sample.degree())
    sample_mean = 2 * sample.number_of_edges() / sample.number_of_nodes()
    assert sample_max > 3 * sample_mean


def test_oversized_target_returns_whole_graph():
    graph = generate_dataset("epinions", scale=0.005, seed=0)
    sample = sample_subgraph(graph, target_nodes=10**6, seed=1)
    assert sample.number_of_nodes() == largest_component(graph).number_of_nodes()


def test_deterministic_per_seed():
    graph = generate_dataset("epinions", scale=0.01, seed=0)
    a = sample_subgraph(graph, 100, seed=5)
    b = sample_subgraph(graph, 100, seed=5)
    assert set(a.edges) == set(b.edges)


def test_invalid_target_rejected():
    graph = nx.path_graph(10)
    with pytest.raises(ValueError):
        sample_subgraph(graph, 0)


def test_largest_component_relabels():
    graph = nx.Graph([(0, 1), (5, 6), (6, 7)])
    component = largest_component(graph)
    assert component.number_of_nodes() == 3
    assert set(component.nodes) == {0, 1, 2}


def test_largest_component_of_empty_graph():
    assert largest_component(nx.Graph()).number_of_nodes() == 0
