"""Tests for the edge-list loader."""

import gzip

import pytest

from repro.graphs.loader import load_edge_list


def test_load_plain_edge_list(tmp_path):
    path = tmp_path / "edges.txt"
    path.write_text("# comment line\n0 1\n1 2\n2 0\n")
    graph = load_edge_list(path)
    assert graph.number_of_nodes() == 3
    assert graph.number_of_edges() == 3


def test_load_gzipped_edge_list(tmp_path):
    path = tmp_path / "edges.txt.gz"
    with gzip.open(path, "wt") as handle:
        handle.write("0 1\n1 2\n")
    graph = load_edge_list(path)
    assert graph.number_of_edges() == 2


def test_directed_edges_symmetrized(tmp_path):
    path = tmp_path / "trust.txt"
    path.write_text("0 1\n1 0\n")  # both directions collapse to one edge
    graph = load_edge_list(path)
    assert graph.number_of_edges() == 1


def test_self_loops_dropped(tmp_path):
    path = tmp_path / "edges.txt"
    path.write_text("0 0\n0 1\n")
    graph = load_edge_list(path)
    assert graph.number_of_edges() == 1


def test_relabeled_to_contiguous_integers(tmp_path):
    path = tmp_path / "edges.txt"
    path.write_text("1000 2000\n2000 50\n")
    graph = load_edge_list(path)
    assert set(graph.nodes) == {0, 1, 2}


def test_missing_file_raises():
    with pytest.raises(FileNotFoundError):
        load_edge_list("/nonexistent/file.txt")


def test_malformed_line_raises(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("justonetoken\n")
    with pytest.raises(ValueError):
        load_edge_list(path)
