"""Tests for the bandwidth-aware recommendation extension."""

import pytest

from repro.core.experience import ExperienceReport
from repro.extensions.bandwidth import (
    BandwidthTracker,
    qos_adjusted_ranking,
    simulate_qos_benefit,
)


def report(mirror, bandwidth):
    return ExperienceReport(
        reporter=1, mirror=mirror, observations=3, availability=0.9,
        bandwidth_kb_s=bandwidth,
    )


class TestTracker:
    def test_first_report_sets_estimate(self):
        tracker = BandwidthTracker()
        tracker.ingest_reports([report(5, 400.0)])
        assert tracker.estimate(5) == 400.0

    def test_ewma_smoothing(self):
        tracker = BandwidthTracker(smoothing=0.5)
        tracker.ingest_reports([report(5, 400.0)])
        tracker.ingest_reports([report(5, 200.0)])
        assert tracker.estimate(5) == pytest.approx(300.0)

    def test_reports_without_bandwidth_ignored(self):
        tracker = BandwidthTracker()
        tracker.ingest_reports(
            [ExperienceReport(reporter=1, mirror=5, observations=3, availability=0.9)]
        )
        assert tracker.estimate(5) is None
        assert tracker.known_mirrors() == []

    def test_invalid_smoothing(self):
        with pytest.raises(ValueError):
            BandwidthTracker(smoothing=0.0)


class TestQosRanking:
    def test_availability_stays_primary(self):
        tracker = BandwidthTracker()
        tracker.ingest_reports([report(1, 50.0), report(2, 2000.0)])
        # Mirror 1: much better availability, terrible bandwidth.
        ranking = qos_adjusted_ranking([(1, 0.9), (2, 0.4)], tracker, qos_weight=0.25)
        assert ranking[0][0] == 1

    def test_bandwidth_breaks_near_ties(self):
        tracker = BandwidthTracker()
        tracker.ingest_reports([report(1, 50.0), report(2, 2000.0)])
        ranking = qos_adjusted_ranking([(1, 0.80), (2, 0.79)], tracker, qos_weight=0.25)
        assert ranking[0][0] == 2

    def test_unknown_bandwidth_neutral(self):
        tracker = BandwidthTracker()
        ranking = qos_adjusted_ranking([(1, 0.5), (2, 0.4)], tracker, qos_weight=0.25)
        assert [m for m, _ in ranking] == [1, 2]
        assert ranking[0][1] == pytest.approx(0.5)

    def test_zero_weight_is_identity(self):
        tracker = BandwidthTracker()
        tracker.ingest_reports([report(2, 2000.0)])
        original = [(1, 0.5), (2, 0.49)]
        ranking = qos_adjusted_ranking(original, tracker, qos_weight=0.0)
        assert ranking == sorted(original, key=lambda p: -p[1])

    def test_invalid_weight(self):
        with pytest.raises(ValueError):
            qos_adjusted_ranking([], BandwidthTracker(), qos_weight=1.0)


def test_qos_experiment_improves_bandwidth_at_same_availability():
    """The Sec. 8 claim: better QoS without giving up availability."""
    outcomes = simulate_qos_benefit(n_mirrors=150, n_selectors=60, seed=3)
    baseline = outcomes["baseline"]
    qos = outcomes["qos"]
    assert qos.mean_mirror_bandwidth_kb_s > baseline.mean_mirror_bandwidth_kb_s
    assert qos.estimated_availability > baseline.estimated_availability - 0.02
