"""Tests for the tie-strength extension."""

import numpy as np
import pytest

from repro.core.experience import ExperienceReport
from repro.extensions.ties import TieStrengthModel, tie_adjusted_beta, weigh_reports_by_tie


@pytest.fixture()
def model():
    model = TieStrengthModel()
    rng = np.random.default_rng(0)
    edges = [(0, 1), (0, 2), (1, 2), (3, 0)]
    model.assign(edges, rng, attacker_ids={3})
    return model


def test_strength_symmetric(model):
    assert model.strength(0, 1) == model.strength(1, 0)


def test_non_friends_have_zero_strength(model):
    assert model.strength(0, 99) == 0.0


def test_infiltration_ties_are_weak(model):
    assert model.strength(3, 0) <= TieStrengthModel().infiltration_max


def test_honest_ties_heavy_tailed():
    model = TieStrengthModel()
    rng = np.random.default_rng(1)
    edges = [(i, i + 1000) for i in range(2000)]
    model.assign(edges, rng)
    strengths = [model.strength(a, b) for a, b in edges]
    # Most ties weak, some strong (Gilbert-Karahalios shape).
    assert np.median(strengths) < 0.4
    assert max(strengths) > 0.8
    assert model.mean_strength() < 0.45


def test_set_strength_validated(model):
    model.set_strength(5, 6, 0.9)
    assert model.strength(5, 6) == 0.9
    with pytest.raises(ValueError):
        model.set_strength(5, 6, 1.5)


def test_weigh_reports_scales_by_tie(model):
    model.set_strength(10, 11, 0.8)
    model.set_strength(10, 12, 0.1)
    reports = [
        ExperienceReport(reporter=11, mirror=1, observations=3, availability=1.0),
        ExperienceReport(reporter=12, mirror=1, observations=3, availability=0.0),
    ]
    weighted = weigh_reports_by_tie(reports, receiver=10, ties=model)
    assert weighted[0].weight == pytest.approx(0.8)
    assert weighted[1].weight == pytest.approx(0.1)
    # Other fields untouched.
    assert weighted[0].availability == 1.0
    assert weighted[1].observations == 3


def test_weigh_reports_floor_keeps_acquaintances_audible(model):
    reports = [
        ExperienceReport(reporter=999, mirror=1, observations=3, availability=1.0)
    ]
    weighted = weigh_reports_by_tie(reports, receiver=10, ties=model, floor=0.1)
    assert weighted[0].weight == pytest.approx(0.1)


def test_tie_adjusted_beta():
    assert tie_adjusted_beta(1.25, 0.5) == pytest.approx(1.25)
    assert tie_adjusted_beta(1.25, 1.0) == pytest.approx(1.5)
    assert tie_adjusted_beta(1.25, 0.0) == pytest.approx(1.0)
    with pytest.raises(ValueError):
        tie_adjusted_beta(0.9, 0.5)
    with pytest.raises(ValueError):
        tie_adjusted_beta(1.25, 1.5)


def test_weighted_reports_dampen_slander_in_ranker():
    """A weak-tied slanderer loses against a strong-tied honest friend."""
    from repro.core.config import SoupConfig
    from repro.core.knowledge import KnowledgeBase
    from repro.core.ranking import RegularRanker

    config = SoupConfig()
    kb = KnowledgeBase(owner=0)
    ranker = RegularRanker(kb, config)
    honest = ExperienceReport(
        reporter=1, mirror=5, observations=3, availability=1.0, weight=0.8
    )
    slander = ExperienceReport(
        reporter=666, mirror=5, observations=3, availability=0.0, weight=0.1
    )
    for _ in range(8):
        ranker.ingest_reports([honest, slander])
    assert kb.experience_of(5) > 0.7
