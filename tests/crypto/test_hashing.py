"""Tests for SOUP ID derivation and hash helpers."""

import pytest

from repro.crypto.hashing import (
    SOUP_ID_SPACE,
    dht_key_for_string,
    format_soup_id,
    sha256,
    sha256_int,
    soup_id_from_public_key,
    truncate_to_id,
)


def test_sha256_known_vector():
    # SHA-256 of empty input, first bytes.
    assert sha256(b"").hex().startswith("e3b0c44298fc1c14")


def test_sha256_int_matches_bytes():
    digest = sha256(b"abc")
    assert sha256_int(b"abc") == int.from_bytes(digest, "big")


def test_soup_id_is_64_bits():
    soup_id = soup_id_from_public_key(b"some public key bytes")
    assert 0 <= soup_id < SOUP_ID_SPACE


def test_soup_id_deterministic_and_key_sensitive():
    a = soup_id_from_public_key(b"key-a")
    assert a == soup_id_from_public_key(b"key-a")
    assert a != soup_id_from_public_key(b"key-b")


def test_truncation_uses_top_bytes():
    digest = bytes(range(32))
    assert truncate_to_id(digest) == int.from_bytes(digest[:8], "big")


def test_dht_key_for_string_in_range():
    key = dht_key_for_string("alice")
    assert 0 <= key < SOUP_ID_SPACE
    assert key != dht_key_for_string("bob")


def test_format_soup_id_fixed_width():
    assert format_soup_id(0) == "0" * 16
    assert format_soup_id(SOUP_ID_SPACE - 1) == "f" * 16
    assert len(format_soup_id(12345)) == 16


def test_format_soup_id_rejects_out_of_range():
    with pytest.raises(ValueError):
        format_soup_id(SOUP_ID_SPACE)
    with pytest.raises(ValueError):
        format_soup_id(-1)
