"""Tests for the simulation-grade CP-ABE."""

import pytest

from repro.crypto import abe
from repro.crypto.abe import AbeAuthority, AbeError
from repro.crypto.access import and_of, attr, or_of, threshold


@pytest.fixture()
def authority():
    return AbeAuthority(master_secret=b"m" * 32, authority_id="auth-1")


def test_roundtrip_single_attribute(authority):
    ciphertext = authority.encrypt(b"payload", attr("friend"))
    key = authority.issue_key(["friend"])
    assert abe.decrypt(ciphertext, key) == b"payload"


def test_missing_attribute_cannot_decrypt(authority):
    ciphertext = authority.encrypt(b"payload", attr("friend"))
    key = authority.issue_key(["colleague"])
    with pytest.raises(AbeError):
        abe.decrypt(ciphertext, key)


def test_and_policy_requires_both(authority):
    policy = and_of(attr("colleague"), attr("family"))
    ciphertext = authority.encrypt(b"secret", policy)
    assert abe.decrypt(ciphertext, authority.issue_key(["colleague", "family"])) == b"secret"
    with pytest.raises(AbeError):
        abe.decrypt(ciphertext, authority.issue_key(["colleague"]))


def test_or_policy_any_branch(authority):
    policy = or_of(attr("a"), attr("b"))
    ciphertext = authority.encrypt(b"x", policy)
    assert abe.decrypt(ciphertext, authority.issue_key(["a"])) == b"x"
    assert abe.decrypt(ciphertext, authority.issue_key(["b"])) == b"x"


def test_threshold_policy(authority):
    policy = threshold(2, attr("a"), attr("b"), attr("c"))
    ciphertext = authority.encrypt(b"x", policy)
    assert abe.decrypt(ciphertext, authority.issue_key(["a", "c"])) == b"x"
    with pytest.raises(AbeError):
        abe.decrypt(ciphertext, authority.issue_key(["c"]))


def test_nested_policy(authority):
    policy = and_of(attr("colleague"), or_of(attr("nearby"), attr("family")))
    ciphertext = authority.encrypt(b"fine-grained", policy)
    assert (
        abe.decrypt(ciphertext, authority.issue_key(["colleague", "family"]))
        == b"fine-grained"
    )
    with pytest.raises(AbeError):
        abe.decrypt(ciphertext, authority.issue_key(["nearby", "family"]))


def test_mirror_without_keys_cannot_read(authority):
    """The core privacy property: mirrors store data they cannot decrypt."""
    ciphertext = authority.encrypt(b"private profile", attr("friend"))
    # A mirror holds no attribute keys at all; it only sees ciphertext.
    assert b"private profile" not in ciphertext.payload
    with pytest.raises(AbeError):
        abe.decrypt(ciphertext, authority.issue_key(["mirror-operator"]))


def test_cross_authority_key_rejected(authority):
    other = AbeAuthority(master_secret=b"o" * 32, authority_id="auth-2")
    ciphertext = authority.encrypt(b"x", attr("friend"))
    with pytest.raises(AbeError):
        abe.decrypt(ciphertext, other.issue_key(["friend"]))


def test_empty_attribute_key_rejected(authority):
    with pytest.raises(AbeError):
        authority.issue_key([])


def test_large_payload(authority):
    payload = b"p" * 300_000
    ciphertext = authority.encrypt(payload, attr("friend"))
    assert abe.decrypt(ciphertext, authority.issue_key(["friend"])) == payload


def test_ciphertext_size_accounts_payload_and_shares(authority):
    ciphertext = authority.encrypt(b"x" * 1000, and_of(attr("a"), attr("b")))
    assert ciphertext.size_bytes() > 1000
    assert len(ciphertext.wrapped_shares) == 2


def test_deterministic_with_pinned_rng(authority):
    counter = [0]

    def fixed_bytes(n):
        counter[0] += 1
        return bytes((counter[0] % 256,)) * n

    c1 = authority.encrypt(b"data", attr("a"), rng_bytes=fixed_bytes)
    counter[0] = 0
    c2 = authority.encrypt(b"data", attr("a"), rng_bytes=fixed_bytes)
    assert c1.payload == c2.payload
