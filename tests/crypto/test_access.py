"""Tests for access-structure trees."""

import pytest

from repro.crypto.access import AccessStructure, and_of, attr, or_of, threshold


def test_leaf_satisfied_by_matching_attribute():
    assert attr("colleague").is_satisfied_by({"colleague"})
    assert not attr("colleague").is_satisfied_by({"family"})
    assert not attr("colleague").is_satisfied_by(set())


def test_and_requires_all():
    policy = and_of(attr("a"), attr("b"))
    assert policy.is_satisfied_by({"a", "b"})
    assert policy.is_satisfied_by({"a", "b", "c"})
    assert not policy.is_satisfied_by({"a"})
    assert not policy.is_satisfied_by({"b"})


def test_or_requires_any():
    policy = or_of(attr("a"), attr("b"))
    assert policy.is_satisfied_by({"a"})
    assert policy.is_satisfied_by({"b"})
    assert not policy.is_satisfied_by({"c"})


def test_threshold_gate():
    policy = threshold(2, attr("a"), attr("b"), attr("c"))
    assert policy.is_satisfied_by({"a", "b"})
    assert policy.is_satisfied_by({"b", "c"})
    assert not policy.is_satisfied_by({"a"})


def test_nested_structure():
    # The paper's example: two attributes for one item, three for another.
    policy = and_of(attr("colleague"), or_of(attr("lives-nearby"), attr("family")))
    assert policy.is_satisfied_by({"colleague", "family"})
    assert policy.is_satisfied_by({"colleague", "lives-nearby"})
    assert not policy.is_satisfied_by({"colleague"})
    assert not policy.is_satisfied_by({"family", "lives-nearby"})


def test_attributes_collects_all_leaves():
    policy = and_of(attr("a"), or_of(attr("b"), attr("c")))
    assert policy.attributes() == frozenset({"a", "b", "c"})


def test_describe_readable():
    policy = and_of(attr("a"), or_of(attr("b"), attr("c")))
    text = policy.describe()
    assert "AND" in text and "OR" in text and "a" in text


def test_describe_threshold():
    assert "2-of-" in threshold(2, attr("a"), attr("b"), attr("c")).describe()


def test_empty_attribute_rejected():
    with pytest.raises(ValueError):
        attr("")


def test_invalid_threshold_rejected():
    with pytest.raises(ValueError):
        threshold(3, attr("a"), attr("b"))
    with pytest.raises(ValueError):
        threshold(0, attr("a"))


def test_internal_node_needs_children():
    with pytest.raises(ValueError):
        AccessStructure(threshold=1, children=())


def test_leaf_cannot_have_children():
    with pytest.raises(ValueError):
        AccessStructure(attribute="a", threshold=1, children=(attr("b"),))
