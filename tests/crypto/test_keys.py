"""Tests for identity key pairs and signed envelopes."""

import pytest

from repro.crypto.hashing import SOUP_ID_SPACE, soup_id_from_public_key
from repro.crypto.keys import KeyPair, sign_payload, verify_envelope


@pytest.fixture(scope="module")
def keys():
    return KeyPair.generate(bits=512, seed=11)


def test_soup_id_derived_from_public_key(keys):
    assert keys.soup_id == soup_id_from_public_key(keys.public.to_bytes())
    assert 0 <= keys.soup_id < SOUP_ID_SPACE


def test_different_seeds_different_ids():
    a = KeyPair.generate(bits=512, seed=1)
    b = KeyPair.generate(bits=512, seed=2)
    assert a.soup_id != b.soup_id


def test_sign_and_verify_bytes(keys):
    envelope = sign_payload(b"raw bytes", keys)
    assert envelope.signer_id == keys.soup_id
    assert verify_envelope(envelope, keys.public)


def test_sign_and_verify_json_payload(keys):
    envelope = sign_payload({"action": "friend_request", "to": 42}, keys)
    assert verify_envelope(envelope, keys.public)


def test_json_payload_canonicalized(keys):
    a = sign_payload({"b": 1, "a": 2}, keys)
    b = sign_payload({"a": 2, "b": 1}, keys)
    assert a.payload == b.payload
    assert a.signature == b.signature


def test_tampered_envelope_rejected(keys):
    envelope = sign_payload(b"original", keys)
    from dataclasses import replace

    forged = replace(envelope, payload=b"forged")
    assert not verify_envelope(forged, keys.public)


def test_wrong_key_rejected(keys):
    other = KeyPair.generate(bits=512, seed=99)
    envelope = sign_payload(b"data", keys)
    assert not verify_envelope(envelope, other.public)


def test_envelope_size_includes_signature(keys):
    envelope = sign_payload(b"12345", keys)
    assert envelope.size_bytes() == 5 + 8 + 128
