"""Tests for the from-scratch RSA implementation."""

import pytest

from repro.crypto import rsa


@pytest.fixture(scope="module")
def keypair():
    return rsa.generate_keypair(bits=512, seed=123)


def test_modulus_has_requested_bits(keypair):
    assert keypair.public.n.bit_length() == 512
    assert keypair.public.bits == 512


def test_key_generation_deterministic():
    a = rsa.generate_keypair(bits=256, seed=5)
    b = rsa.generate_keypair(bits=256, seed=5)
    assert a.public.n == b.public.n
    c = rsa.generate_keypair(bits=256, seed=6)
    assert a.public.n != c.public.n


def test_encrypt_decrypt_roundtrip(keypair):
    message = 0xDEADBEEF
    ciphertext = rsa.encrypt_int(message, keypair.public)
    assert ciphertext != message
    assert rsa.decrypt_int(ciphertext, keypair.private) == message


def test_encrypt_rejects_out_of_range(keypair):
    with pytest.raises(rsa.RsaError):
        rsa.encrypt_int(keypair.public.n, keypair.public)
    with pytest.raises(rsa.RsaError):
        rsa.encrypt_int(-1, keypair.public)


def test_sign_verify_roundtrip(keypair):
    message = b"hello SOUP"
    signature = rsa.sign(message, keypair.private)
    assert rsa.verify(message, signature, keypair.public)


def test_verify_rejects_tampered_message(keypair):
    signature = rsa.sign(b"original", keypair.private)
    assert not rsa.verify(b"tampered", signature, keypair.public)


def test_verify_rejects_tampered_signature(keypair):
    signature = rsa.sign(b"message", keypair.private)
    assert not rsa.verify(b"message", signature + 1, keypair.public)
    assert not rsa.verify(b"message", -1, keypair.public)
    assert not rsa.verify(b"message", keypair.public.n + 5, keypair.public)


def test_verify_rejects_wrong_key(keypair):
    other = rsa.generate_keypair(bits=512, seed=99)
    signature = rsa.sign(b"message", keypair.private)
    assert not rsa.verify(b"message", signature, other.public)


def test_crt_decryption_matches_plain_pow(keypair):
    message = 123456789
    ciphertext = rsa.encrypt_int(message, keypair.public)
    plain_pow = pow(ciphertext, keypair.private.d, keypair.private.n)
    assert rsa.decrypt_int(ciphertext, keypair.private) == plain_pow


def test_public_key_serialization_stable(keypair):
    assert keypair.public.to_bytes() == keypair.public.to_bytes()
    other = rsa.generate_keypair(bits=512, seed=77)
    assert keypair.public.to_bytes() != other.public.to_bytes()


def test_too_small_modulus_rejected():
    with pytest.raises(rsa.RsaError):
        rsa.generate_keypair(bits=64)
