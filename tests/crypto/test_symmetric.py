"""Tests for the SHA-256 keystream cipher."""

import pytest

from repro.crypto.symmetric import (
    SymmetricCipherError,
    symmetric_decrypt,
    symmetric_encrypt,
)

KEY = b"0123456789abcdef"


def test_roundtrip():
    blob = symmetric_encrypt(KEY, b"attack at dawn")
    assert symmetric_decrypt(KEY, blob) == b"attack at dawn"


def test_empty_plaintext_roundtrip():
    blob = symmetric_encrypt(KEY, b"")
    assert symmetric_decrypt(KEY, blob) == b""


def test_large_plaintext_roundtrip():
    data = bytes(range(256)) * 512  # 128 KiB, many keystream blocks
    assert symmetric_decrypt(KEY, symmetric_encrypt(KEY, data)) == data


def test_ciphertext_differs_from_plaintext():
    blob = symmetric_encrypt(KEY, b"secret message body")
    assert b"secret message body" not in blob


def test_random_nonce_gives_distinct_ciphertexts():
    assert symmetric_encrypt(KEY, b"x") != symmetric_encrypt(KEY, b"x")


def test_pinned_nonce_is_deterministic():
    nonce = b"n" * 16
    assert symmetric_encrypt(KEY, b"x", nonce) == symmetric_encrypt(KEY, b"x", nonce)


def test_wrong_key_fails_authentication():
    blob = symmetric_encrypt(KEY, b"data")
    with pytest.raises(SymmetricCipherError):
        symmetric_decrypt(b"fedcba9876543210", blob)


def test_tampered_body_fails_authentication():
    blob = bytearray(symmetric_encrypt(KEY, b"data payload"))
    blob[20] ^= 0xFF
    with pytest.raises(SymmetricCipherError):
        symmetric_decrypt(KEY, bytes(blob))


def test_tampered_tag_fails_authentication():
    blob = bytearray(symmetric_encrypt(KEY, b"data payload"))
    blob[-1] ^= 0x01
    with pytest.raises(SymmetricCipherError):
        symmetric_decrypt(KEY, bytes(blob))


def test_truncated_blob_rejected():
    with pytest.raises(SymmetricCipherError):
        symmetric_decrypt(KEY, b"short")


def test_short_key_rejected():
    with pytest.raises(SymmetricCipherError):
        symmetric_encrypt(b"tiny", b"data")


def test_bad_nonce_size_rejected():
    with pytest.raises(SymmetricCipherError):
        symmetric_encrypt(KEY, b"data", nonce=b"short")
