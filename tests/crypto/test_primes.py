"""Tests for the Miller-Rabin prime generator."""

import random

import pytest

from repro.crypto.primes import generate_prime, is_probable_prime


KNOWN_PRIMES = [2, 3, 5, 7, 97, 101, 7919, 104729, 2**31 - 1, 2**61 - 1]
KNOWN_COMPOSITES = [1, 4, 9, 15, 100, 561, 1105, 1729, 2821, 6601, 2**31, 7919 * 104729]


@pytest.mark.parametrize("n", KNOWN_PRIMES)
def test_known_primes_pass(n):
    assert is_probable_prime(n)


@pytest.mark.parametrize("n", KNOWN_COMPOSITES)
def test_known_composites_fail(n):
    # Includes Carmichael numbers (561, 1105, 1729 ...), which fool the
    # Fermat test but not Miller-Rabin.
    assert not is_probable_prime(n)


def test_negative_and_zero_are_not_prime():
    assert not is_probable_prime(0)
    assert not is_probable_prime(-7)


def test_generated_prime_has_exact_bit_length():
    rng = random.Random(42)
    for bits in (16, 32, 64, 128):
        p = generate_prime(bits, rng)
        assert p.bit_length() == bits
        assert is_probable_prime(p)


def test_generated_primes_are_odd():
    rng = random.Random(0)
    assert generate_prime(32, rng) % 2 == 1


def test_generation_is_deterministic_per_seed():
    assert generate_prime(64, random.Random(7)) == generate_prime(64, random.Random(7))
    assert generate_prime(64, random.Random(7)) != generate_prime(64, random.Random(8))


def test_tiny_bit_size_rejected():
    with pytest.raises(ValueError):
        generate_prime(4, random.Random(0))


def test_large_prime_probabilistic_path():
    # Above the deterministic bound the random-witness path is used.
    rng = random.Random(1)
    p = generate_prime(96, rng)
    assert is_probable_prime(p, rounds=10, rng=random.Random(2))
