"""Tests for the Table 1 feature matrix."""

from repro.baselines.features import (
    FEATURES,
    SYSTEMS,
    feature_matrix,
    missing_feature_count,
    table1_rows,
)

import pytest


def test_soup_supports_everything():
    assert missing_feature_count("SOUP") == 0


def test_every_competitor_lacks_multiple_features():
    """The paper: "each solution has deficiencies in multiple categories"."""
    for system in SYSTEMS:
        if system == "SOUP":
            continue
        assert missing_feature_count(system) >= 2, system


def test_matrix_shape():
    matrix = feature_matrix()
    assert set(matrix) == set(SYSTEMS)
    for features in matrix.values():
        assert set(features) == set(FEATURES)


def test_table_rows_render():
    rows = table1_rows()
    assert len(rows) == len(SYSTEMS)
    assert rows[-1][0] == "SOUP"  # SOUP listed last
    assert all(cell in "+-" for row in rows for cell in row[1:])
    soup_row = rows[-1]
    assert all(cell == "+" for cell in soup_row[1:])


def test_specific_paper_claims():
    # Diaspora/SuperNova: no user data encryption (Sec. 2).
    assert "data_encryption" not in SYSTEMS["Diaspora"]
    assert "data_encryption" not in SYSTEMS["SuperNova"]
    # Safebook-family discriminate by social links.
    assert "no_user_discrimination" not in SYSTEMS["Safebook"]
    assert "no_user_discrimination" not in SYSTEMS["MyZone"]
    # Server-based approaches depend on dedicated infrastructure.
    assert "no_dedicated_servers" not in SYSTEMS["Diaspora"]
    assert "no_dedicated_servers" not in SYSTEMS["Vis-a-Vis"]
    # None of the competitors are attack resilient (Sec. 5.2.6: "None of
    # the existing DOSN solutions consider attacks on their system").
    for system in SYSTEMS:
        if system != "SOUP":
            assert "attack_resilient" not in SYSTEMS[system]


def test_unknown_system_rejected():
    with pytest.raises(KeyError):
        missing_feature_count("Friendster")
