"""Tests for the PeerSoN baseline model."""

import numpy as np
import pytest

from repro.baselines.peerson import PeerSonModel
from repro.sim.scenario import OnlineDistribution, sample_distribution


@pytest.fixture()
def rng():
    return np.random.default_rng(0)


def test_partner_counts(rng):
    model = PeerSonModel(replica_count=6)
    p = rng.random(200)
    partners = model.assign_partners(p, rng)
    assert all(len(ps) == 6 for ps in partners)
    for node, ps in enumerate(partners):
        assert node not in ps


def test_assortative_matching(rng):
    """Partners have similar online probabilities (mutual agreements only
    form between comparable peers)."""
    model = PeerSonModel(replica_count=4, assortativity_band=0.1)
    p = np.sort(rng.random(500))
    partners = model.assign_partners(p, rng)
    gaps = [
        abs(p[node] - p[partner])
        for node, ps in enumerate(partners)
        for partner in ps
    ]
    assert np.mean(gaps) < 0.15


def test_availability_depends_on_own_online_time(rng):
    """The paper's criticism: rarely-online users get rarely-online
    partners, so their availability stays low."""
    model = PeerSonModel(replica_count=6)
    p = sample_distribution(OnlineDistribution.PEERSON, 800, rng)
    summary = model.summary(p, seed=1, n_epochs=24 * 5)
    assert summary["availability_max"] > 0.97
    assert summary["availability_min"] < 0.92
    assert summary["replicas"] == pytest.approx(6.0, abs=0.5)


def test_summary_availability_reasonable(rng):
    model = PeerSonModel()
    p = np.full(300, 0.75)
    summary = model.summary(p, seed=0, n_epochs=24 * 3)
    assert summary["availability"] > 0.95


def test_availability_series_bounds(rng):
    model = PeerSonModel(replica_count=2)
    matrix = rng.random((50, 48)) < 0.4
    partners = model.assign_partners(rng.random(50), rng)
    series = model.availability_series(matrix, partners)
    assert len(series) == 48
    assert np.all((series >= 0) & (series <= 1))
