"""Tests for the Safebook baseline model."""

import networkx as nx
import numpy as np
import pytest

from repro.baselines.safebook import SafebookModel
from repro.graphs.datasets import generate_dataset


@pytest.fixture()
def rng():
    return np.random.default_rng(0)


def test_mirrors_are_friends_only(rng):
    graph = generate_dataset("epinions", scale=0.005, seed=0)
    p = rng.random(graph.number_of_nodes())
    model = SafebookModel(max_mirrors=5)
    mirrors = model.assign_mirrors(graph, p, rng)
    for node, ms in enumerate(mirrors):
        friends = set(graph.neighbors(node))
        assert set(ms) <= friends
        assert len(ms) <= 5


def test_low_degree_nodes_get_few_mirrors(rng):
    graph = nx.star_graph(10)  # leaves have exactly one friend
    p = np.full(11, 0.5)
    model = SafebookModel(max_mirrors=8)
    mirrors = model.assign_mirrors(graph, p, rng)
    assert len(mirrors[0]) == 8  # the hub
    assert all(len(mirrors[leaf]) == 1 for leaf in range(1, 11))


def test_unavailable_friends_excluded(rng):
    graph = nx.complete_graph(5)
    p = np.array([0.5, 0.01, 0.01, 0.5, 0.5])
    model = SafebookModel(min_mirror_probability=0.05)
    mirrors = model.assign_mirrors(graph, p, rng)
    assert 1 not in mirrors[0]
    assert 2 not in mirrors[0]


def test_uniform_03_summary_matches_paper_band(rng):
    """Table 4: Safebook at uniform p=0.3 reaches ~90 % availability with
    13-24 replicas."""
    graph = generate_dataset("facebook", scale=0.004, seed=1)
    p = np.full(graph.number_of_nodes(), 0.3)
    model = SafebookModel(max_mirrors=24)
    summary = model.summary(graph, p, seed=0, n_epochs=24 * 4)
    assert 0.80 <= summary["availability"] <= 0.97
    assert summary["replicas"] <= 24


def test_summary_reports_mirrorless_nodes(rng):
    graph = nx.Graph()
    graph.add_edges_from([(0, 1), (2, 3)])
    graph.add_node(4)  # isolated: no friends at all
    p = np.full(5, 0.5)
    summary = SafebookModel().summary(graph, p, seed=0, n_epochs=24)
    assert summary["nodes_without_mirrors"] == 1
