"""Tests for the Cachet baseline model."""

import numpy as np
import pytest

from repro.baselines.cachet import CachetModel


@pytest.fixture()
def rng():
    return np.random.default_rng(0)


def test_availability_high_with_repair(rng):
    model = CachetModel(replication_factor=8)
    matrix = rng.random((200, 96)) < 0.3
    series = model.availability_series(matrix, rng)
    assert series[10:].mean() > 0.9


def test_more_replicas_higher_availability(rng):
    matrix = rng.random((200, 96)) < 0.2
    low = CachetModel(replication_factor=2).availability_series(matrix, np.random.default_rng(1))
    high = CachetModel(replication_factor=10).availability_series(matrix, np.random.default_rng(1))
    assert high.mean() > low.mean()


def test_churn_traffic_counts_offline_transitions():
    model = CachetModel(profile_size_bytes=1e6)
    matrix = np.array([[True, False, True, False]])  # two offline transitions
    traffic = model.churn_traffic_bytes(matrix, stored_per_node=3.0)
    assert traffic == pytest.approx(2 * 3.0 * 1e6)


def test_summary_reports_churn_cost(rng):
    model = CachetModel()
    p = np.full(150, 0.25)
    summary = model.summary(p, seed=0, n_epochs=24 * 3)
    assert summary["availability"] > 0.85
    assert summary["churn_traffic_gb"] > 0
    assert summary["replicas"] == model.replication_factor


def test_cachet_overhead_exceeds_soup_equilibrium(rng):
    """Sec. 2: Cachet 'does not minimize the number of replicas'."""
    model = CachetModel()
    assert model.replication_factor >= 8
