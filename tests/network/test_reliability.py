"""Tests for the reliability layer: retry policy, circuit breaker,
failure detector, and acknowledged sends over the simulated network."""

import pytest

from repro.network.events import EventLoop
from repro.network.reliability import (
    ACK_BYTES,
    CLOSED,
    HALF_OPEN,
    OPEN,
    Ack,
    CircuitBreaker,
    Envelope,
    FailureDetector,
    ReliabilityStats,
    ReliableEndpoint,
    RetryPolicy,
)
from repro.network.simnet import LinkSpec, SimNetwork

FAST_LINK = LinkSpec(
    latency_s=0.1, upstream_bytes_per_s=1e9, downstream_bytes_per_s=1e9
)


class TestRetryPolicy:
    def test_schedule_deterministic_for_seed_and_key(self):
        policy = RetryPolicy()
        assert policy.schedule(seed=7, key=42) == policy.schedule(seed=7, key=42)

    def test_schedule_varies_with_seed_and_key(self):
        policy = RetryPolicy()
        base = policy.schedule(seed=7, key=42)
        assert base != policy.schedule(seed=8, key=42)
        assert base != policy.schedule(seed=7, key=43)

    def test_backoff_grows_within_jitter_bounds(self):
        policy = RetryPolicy(
            base_delay_s=1.0, multiplier=2.0, jitter_fraction=0.25, max_attempts=5
        )
        for attempt in range(1, policy.max_attempts):
            nominal = policy.base_delay_s * policy.multiplier ** (attempt - 1)
            delay = policy.backoff_s(attempt, seed=0, key="k")
            assert nominal * 0.75 <= delay <= nominal * 1.25

    def test_zero_jitter_is_exact_exponential(self):
        policy = RetryPolicy(base_delay_s=0.5, multiplier=2.0, jitter_fraction=0.0)
        assert policy.schedule(seed=0, key=0) == [0.5, 1.0, 2.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(attempt_timeout_s=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter_fraction=1.0)


class TestCircuitBreaker:
    def test_stays_closed_below_threshold(self):
        breaker = CircuitBreaker(failure_threshold=3)
        breaker.record_failure(1, now=0.0)
        breaker.record_failure(1, now=1.0)
        assert breaker.state_of(1) == CLOSED
        assert breaker.allow(1, now=2.0)

    def test_opens_at_threshold_and_blocks(self):
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout_s=30.0)
        for t in range(3):
            breaker.record_failure(1, now=float(t))
        assert breaker.state_of(1) == OPEN
        assert not breaker.allow(1, now=5.0)
        assert breaker.transitions == {"closed->open": 1}

    def test_half_open_after_reset_timeout(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=10.0)
        breaker.record_failure(1, now=0.0)
        assert not breaker.allow(1, now=9.9)
        assert breaker.allow(1, now=10.0)
        assert breaker.state_of(1) == HALF_OPEN
        assert breaker.transitions["open->half-open"] == 1

    def test_probe_success_closes(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=10.0)
        breaker.record_failure(1, now=0.0)
        breaker.state_of(1, now=10.0)  # -> half-open
        breaker.record_success(1, now=10.5)
        assert breaker.state_of(1) == CLOSED
        assert breaker.transitions["half-open->closed"] == 1

    def test_probe_failure_reopens(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=10.0)
        breaker.record_failure(1, now=0.0)
        breaker.state_of(1, now=10.0)  # -> half-open
        breaker.record_failure(1, now=10.5)
        assert breaker.state_of(1, now=10.6) == OPEN
        assert breaker.transitions["half-open->open"] == 1
        # The reopened window restarts from the probe failure.
        assert breaker.state_of(1, now=20.6) == HALF_OPEN

    def test_success_resets_failure_count(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure(1, now=0.0)
        breaker.record_success(1, now=1.0)
        breaker.record_failure(1, now=2.0)
        assert breaker.state_of(1) == CLOSED

    def test_destinations_independent(self):
        breaker = CircuitBreaker(failure_threshold=1)
        breaker.record_failure(1, now=0.0)
        assert breaker.state_of(1) == OPEN
        assert breaker.state_of(2) == CLOSED

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_timeout_s=0.0)

    def test_half_open_reprobe_cycles_until_success(self):
        # open -> half-open -> probe fails -> open -> half-open -> probe
        # succeeds -> closed: every transition is counted exactly once per
        # cycle and each reopened window restarts from the failed probe.
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=10.0)
        breaker.record_failure(1, now=0.0)
        assert breaker.state_of(1, now=10.0) == HALF_OPEN
        breaker.record_failure(1, now=10.5)  # probe #1 fails
        assert not breaker.allow(1, now=15.0)
        assert breaker.state_of(1, now=20.5) == HALF_OPEN
        breaker.record_success(1, now=21.0)  # probe #2 succeeds
        assert breaker.state_of(1) == CLOSED
        assert breaker.transitions == {
            "closed->open": 1,
            "open->half-open": 2,
            "half-open->open": 1,
            "half-open->closed": 1,
        }

    def test_closed_after_probe_requires_full_threshold_again(self):
        # A recovery via the half-open probe must not leave stale failure
        # counts: re-opening takes ``failure_threshold`` fresh failures.
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout_s=10.0)
        for t in range(3):
            breaker.record_failure(1, now=float(t))
        breaker.state_of(1, now=20.0)  # -> half-open
        breaker.record_success(1, now=20.5)  # -> closed
        breaker.record_failure(1, now=21.0)
        breaker.record_failure(1, now=22.0)
        assert breaker.state_of(1) == CLOSED
        breaker.record_failure(1, now=23.0)
        assert breaker.state_of(1) == OPEN

    def test_clock_skew_backwards_keeps_circuit_open(self):
        # A ``now`` earlier than the opening timestamp (clock skew, replayed
        # timers) must never count as "timeout elapsed".
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=10.0)
        breaker.record_failure(1, now=100.0)
        assert breaker.state_of(1, now=95.0) == OPEN
        assert not breaker.allow(1, now=0.0)
        # Forward again past the window: the probe unlocks as usual.
        assert breaker.allow(1, now=110.0)
        assert breaker.state_of(1) == HALF_OPEN

    def test_state_of_without_now_never_transitions(self):
        # Read-only inspection (no ``now``) must not promote open circuits.
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=10.0)
        breaker.record_failure(1, now=0.0)
        for _ in range(3):
            assert breaker.state_of(1) == OPEN
        assert "open->half-open" not in breaker.transitions


class TestFailureDetector:
    def test_declares_dead_at_threshold_once(self):
        deaths = []
        detector = FailureDetector(suspicion_threshold=3, on_dead=deaths.append)
        assert not detector.record_failure(9)
        assert not detector.record_failure(9)
        assert detector.record_failure(9)  # newly dead
        assert not detector.record_failure(9)  # already dead
        assert deaths == [9]
        assert detector.is_dead(9)
        assert detector.deaths_declared == 1

    def test_success_resets_suspicion(self):
        detector = FailureDetector(suspicion_threshold=2)
        detector.record_failure(9)
        detector.record_success(9)
        detector.record_failure(9)
        assert not detector.is_dead(9)

    def test_revival_fires_on_alive(self):
        alive = []
        detector = FailureDetector(suspicion_threshold=1, on_alive=alive.append)
        detector.record_failure(9)
        assert detector.is_dead(9)
        detector.record_success(9)
        assert not detector.is_dead(9)
        assert alive == [9]
        assert detector.revivals == 1

    def test_declare_dead_is_immediate_and_idempotent(self):
        deaths = []
        detector = FailureDetector(suspicion_threshold=5, on_dead=deaths.append)
        assert detector.declare_dead(9)
        assert not detector.declare_dead(9)
        assert deaths == [9]
        assert detector.dead_peers() == {9}

    def test_success_after_declared_dead_revives_and_resets(self):
        # A delivery observed from a force-declared-dead peer (e.g. the
        # "dead" mirror answers a later probe) revives it AND zeroes its
        # suspicion — a single stale failure afterwards must not re-kill it.
        deaths, alive = [], []
        detector = FailureDetector(
            suspicion_threshold=3, on_dead=deaths.append, on_alive=alive.append
        )
        detector.declare_dead(9)
        assert detector.suspicion_of(9) == 3
        detector.record_success(9)
        assert not detector.is_dead(9)
        assert detector.suspicion_of(9) == 0
        assert alive == [9] and detector.revivals == 1
        # Full threshold is required again before a second declaration.
        assert not detector.record_failure(9)
        assert not detector.record_failure(9)
        assert detector.record_failure(9)
        assert deaths == [9, 9] and detector.deaths_declared == 2

    def test_failures_after_death_keep_raising_suspicion_silently(self):
        deaths = []
        detector = FailureDetector(suspicion_threshold=2, on_dead=deaths.append)
        detector.record_failure(9)
        detector.record_failure(9)
        assert detector.is_dead(9)
        # Extra failures on an already-dead peer: no duplicate callbacks,
        # suspicion still tracked (it is evidence, not a decision).
        assert not detector.record_failure(9)
        assert not detector.record_failure(9)
        assert detector.suspicion_of(9) == 4
        assert deaths == [9] and detector.deaths_declared == 1

    def test_success_on_unknown_peer_is_a_noop(self):
        alive = []
        detector = FailureDetector(suspicion_threshold=2, on_alive=alive.append)
        detector.record_success(42)
        assert not alive and detector.revivals == 0
        assert detector.suspicion_of(42) == 0

    def test_declare_dead_never_lowers_suspicion(self):
        detector = FailureDetector(suspicion_threshold=2)
        for _ in range(5):
            detector.record_failure(9)
        detector.declare_dead(9)  # already dead via threshold
        assert detector.suspicion_of(9) == 5  # max(), not overwrite

    def test_validation(self):
        with pytest.raises(ValueError):
            FailureDetector(suspicion_threshold=0)


class TestReliabilityStats:
    def test_merge_sums_counters(self):
        a = ReliabilityStats(sent=2, acked=1, retries=1)
        b = ReliabilityStats(sent=3, give_ups=1)
        a.merge(b)
        assert a.sent == 5 and a.acked == 1 and a.retries == 1 and a.give_ups == 1


# ---------------------------------------------------------------------------
# acknowledged sends over the simulated network
# ---------------------------------------------------------------------------
class Harness:
    """Two reliable endpoints on one simulated network."""

    def __init__(self, seed=0, policy=None, breaker=None):
        self.loop = EventLoop()
        self.net = SimNetwork(self.loop)
        self.inbox_a = []
        self.inbox_b = []
        self.a = ReliableEndpoint(
            1,
            self.net,
            inner_handler=lambda s, m: self.inbox_a.append((self.loop.now, s, m)),
            policy=policy,
            breaker=breaker,
            seed=seed,
        )
        self.b = ReliableEndpoint(
            2,
            self.net,
            inner_handler=lambda s, m: self.inbox_b.append((self.loop.now, s, m)),
            seed=seed + 1,
        )
        for node_id, endpoint in ((1, self.a), (2, self.b)):
            self.net.register(
                node_id,
                endpoint.handle_message,
                link=FAST_LINK,
                on_failure=endpoint.handle_network_failure,
            )

    def run(self, seconds):
        self.loop.run_until(self.loop.now + seconds)


def test_ack_round_trip():
    h = Harness()
    acked = []
    h.a.send_reliable(2, "hello", 100, on_ack=lambda d, p: acked.append((d, p)))
    h.run(5.0)
    assert [(s, m) for _, s, m in h.inbox_b] == [(1, "hello")]
    assert acked == [(2, "hello")]
    assert h.a.stats.acked == 1
    assert h.a.pending_count() == 0


def test_retry_after_transient_outage_eventually_delivers():
    h = Harness()
    h.net.set_online(2, False)
    h.loop.schedule(1.0, lambda: h.net.set_online(2, True))
    h.a.send_reliable(2, "persist", 100)
    h.run(30.0)
    assert [m for _, _, m in h.inbox_b] == ["persist"]
    assert h.a.stats.retries >= 1
    assert h.a.stats.acked == 1
    assert h.a.pending_count() == 0


def test_ack_loss_retries_but_never_applies_twice():
    """The envelope arrives, the ack is lost in flight, the retry is
    deduplicated and re-acked — the inner handler sees the payload once."""
    h = Harness()
    # Envelope arrives at ~0.2 (two 0.1 s latency legs); the ack lands at
    # ~0.4.  Take the sender offline across that window so the ack is
    # lost in flight.
    h.loop.schedule(0.3, lambda: h.net.set_online(1, False))
    h.loop.schedule(0.5, lambda: h.net.set_online(1, True))
    h.a.send_reliable(2, "once", 100)
    h.run(60.0)
    assert [m for _, _, m in h.inbox_b] == ["once"]
    assert h.a.stats.retries >= 1
    assert h.b.stats.duplicates_dropped >= 1
    assert h.a.stats.acked == 1
    assert h.a.pending_count() == 0


def test_duplicate_envelope_dropped_and_reacked():
    h = Harness()
    envelope = Envelope(msg_id=0, origin=1, attempt=0, payload="dup")
    h.b.handle_message(1, envelope)
    h.b.handle_message(1, envelope)
    assert [m for _, _, m in h.inbox_b] == ["dup"]
    assert h.b.stats.duplicates_dropped == 1
    # Both copies were acked (the origin may have missed the first ack).
    h.run(5.0)
    assert h.net.meters[2].total_sent() == 2 * ACK_BYTES


def test_giveup_after_max_attempts_and_detector_declares_dead():
    h = Harness()
    h.net.set_online(2, False)
    given_up = []
    h.a.send_reliable(2, "doomed", 100, on_giveup=lambda d, p, r: given_up.append((d, p, r)))
    h.run(120.0)
    assert h.a.stats.give_ups == 1
    assert h.a.pending_count() == 0
    assert len(given_up) == 1
    dest, payload, reason = given_up[0]
    assert (dest, payload) == (2, "doomed")
    # Offline destinations fail fast via the network's failure handler.
    assert reason in ("unreachable", "ack-timeout")
    # Four failed attempts cross the default suspicion threshold of 3.
    assert h.a.detector.is_dead(2)


def test_open_circuit_blocks_sends():
    # Long reset timeout so the breaker cannot drift to half-open here.
    h = Harness(breaker=CircuitBreaker(failure_threshold=3, reset_timeout_s=1000.0))
    h.net.set_online(2, False)
    h.a.send_reliable(2, "first", 100)
    h.run(120.0)  # exhausts retries, opens the breaker
    assert h.a.breaker.state_of(2, h.loop.now) == OPEN
    given_up = []
    result = h.a.send_reliable(2, "second", 100, on_giveup=lambda d, p, r: given_up.append(r))
    assert result is None
    assert given_up == ["circuit-open"]
    assert h.a.stats.circuit_blocked == 1


def test_half_open_probe_recovers_after_outage():
    h = Harness()
    h.net.set_online(2, False)
    h.a.send_reliable(2, "first", 100)
    h.run(10.0)  # offline sends fail fast; retries exhaust within seconds
    # state_of without a clock never transitions lazily to half-open.
    assert h.a.breaker.state_of(2) == OPEN
    h.net.set_online(2, True)
    h.run(h.a.breaker.reset_timeout_s + 1.0)  # open -> half-open
    h.a.send_reliable(2, "probe", 100)
    h.run(10.0)
    assert "probe" in [m for _, _, m in h.inbox_b]
    assert h.a.breaker.state_of(2) == CLOSED
    assert h.a.breaker.transitions["half-open->closed"] == 1


def test_plain_traffic_passes_through_and_marks_alive():
    h = Harness()
    h.a.detector.declare_dead(2)
    h.net.send(2, 1, "plain", 50)
    h.run(5.0)
    assert [(s, m) for _, s, m in h.inbox_a] == [(2, "plain")]
    assert not h.a.detector.is_dead(2)


def test_stray_ack_ignored():
    h = Harness()
    h.a.handle_message(2, Ack(msg_id=999))
    assert h.a.stats.acked == 0


def test_retry_timeline_is_deterministic_for_fixed_seed():
    """Same seed, same scenario: the full failure/retry timeline replays
    exactly (event times included)."""

    def timeline(seed):
        h = Harness(seed=seed)
        h.net.set_online(2, False)
        events = []
        h.a.send_reliable(2, "x", 100, on_giveup=lambda d, p, r: events.append(("giveup", h.loop.now)))
        h.loop.schedule(1.0, lambda: h.net.set_online(2, True))
        h.loop.schedule(1.2, lambda: h.net.set_online(2, False))
        h.run(120.0)
        events.extend(("sent", t) for t, _, _ in h.inbox_b)
        return events, h.a.stats.retries, h.a.stats.timeouts

    assert timeline(7) == timeline(7)
    policy = RetryPolicy()
    assert policy.schedule(7, 0) != policy.schedule(8, 0)
