"""Tests for the simulated network."""

import pytest

from repro.network.events import EventLoop
from repro.network.simnet import DeliveryFailure, LinkSpec, SimNetwork, TrafficMeter


@pytest.fixture()
def net():
    loop = EventLoop()
    return SimNetwork(loop)


def test_delivery_to_online_node(net):
    got = []
    net.register(1, lambda s, m: got.append((s, m)))
    net.register(2, lambda s, m: got.append((s, m)))
    net.send(1, 2, "hello", 1000)
    net.loop.run_until(5.0)
    assert got == [(1, "hello")]
    assert net.messages_delivered == 1


def test_send_to_offline_node_fails(net):
    failures = []
    net.register(1, lambda s, m: None, on_failure=lambda d, m, r: failures.append((d, r)))
    net.register(2, lambda s, m: None)
    net.set_online(2, False)
    net.send(1, 2, "lost", 100)
    net.loop.run_until(5.0)
    assert net.messages_failed == 1
    assert failures == [(2, "unreachable")]


def test_send_to_unknown_node_fails(net):
    net.register(1, lambda s, m: None)
    net.send(1, 999, "void", 100)
    net.loop.run_until(5.0)
    assert net.messages_failed == 1


def test_offline_sender_drops_message(net):
    got = []
    net.register(1, lambda s, m: None)
    net.register(2, lambda s, m: got.append(m))
    net.set_online(1, False)
    net.send(1, 2, "x", 10)
    net.loop.run_until(5.0)
    assert got == []


def test_receiver_going_offline_mid_flight_loses_message(net):
    got = []
    net.register(1, lambda s, m: None, link=LinkSpec(latency_s=0.0, upstream_bytes_per_s=100))
    net.register(2, lambda s, m: got.append(m))
    net.send(1, 2, "slow", 1000)  # 10 s transfer
    net.set_online(2, False)
    net.loop.run_until(60.0)
    assert got == []


def test_transfer_time_uses_bottleneck(net):
    fast = LinkSpec(latency_s=0.01, upstream_bytes_per_s=1e6, downstream_bytes_per_s=1e6)
    slow = LinkSpec(latency_s=0.01, upstream_bytes_per_s=1e3, downstream_bytes_per_s=1e3)
    net.register(1, lambda s, m: None, link=fast)
    net.register(2, lambda s, m: None, link=slow)
    assert net.transfer_time(1, 2, 1000) == pytest.approx(0.02 + 1.0)


def test_traffic_metered_both_ends(net):
    net.register(1, lambda s, m: None)
    net.register(2, lambda s, m: None)
    net.send(1, 2, "data", 4096)
    net.loop.run_until(5.0)
    assert net.meters[1].total_sent() == 4096
    assert net.meters[2].total_received() == 4096


def test_uplink_serialization_spreads_bursts(net):
    link = LinkSpec(latency_s=0.0, upstream_bytes_per_s=1000, downstream_bytes_per_s=1e9)
    net.register(1, lambda s, m: None, link=link)
    net.register(2, lambda s, m: None)
    for _ in range(5):
        net.send(1, 2, "chunk", 1000)  # each takes 1 s of uplink
    net.loop.run_until(30.0)
    series = dict(net.meters[1].series_kb_per_s())
    # ~1 KB/s sustained over ~5 s rather than 5 KB in one second.
    peak = max(series.values())
    assert peak <= 2.0


def test_duplicate_registration_rejected(net):
    net.register(1, lambda s, m: None)
    with pytest.raises(ValueError):
        net.register(1, lambda s, m: None)


def test_negative_size_rejected(net):
    net.register(1, lambda s, m: None)
    net.register(2, lambda s, m: None)
    with pytest.raises(ValueError):
        net.send(1, 2, "x", -5)


def test_control_meter_created_on_demand(net):
    meter = net.control_meter(42)
    meter.record_sent(0.0, 100)
    assert net.control_meter(42).total_sent() == 100


class TestTrafficMeter:
    def test_series_and_stats(self):
        meter = TrafficMeter()
        meter.record_sent(0.0, 1024)
        meter.record_received(1.0, 2048)
        series = meter.series_kb_per_s(0, 3)
        assert series == [(0, 1.0), (1, 2.0), (2, 0.0)]
        assert meter.peak_kb_per_s() == 2.0
        # Mean over the meter's own (trailing-trimmed) window.
        assert meter.mean_kb_per_s() == pytest.approx(1.5)

    def test_spread_over_duration(self):
        meter = TrafficMeter()
        meter.record_sent(0.0, 10_240, duration_s=9.0)
        series = meter.series_kb_per_s(0, 10)
        total = sum(kb for _, kb in series)
        assert total == pytest.approx(10.0)
        assert max(kb for _, kb in series) < 3.0

    def test_empty_meter(self):
        meter = TrafficMeter()
        assert meter.peak_kb_per_s() == 0.0
        assert meter.mean_kb_per_s() == 0.0
        assert meter.series_kb_per_s() == []


def test_link_validation():
    with pytest.raises(ValueError):
        LinkSpec(latency_s=-1)
    with pytest.raises(ValueError):
        LinkSpec(upstream_bytes_per_s=0)


def test_sender_offline_reports_failure_to_sender(net):
    """A sender that went offline mid-action is told about the loss — the
    message must not vanish silently (retry machinery needs the signal)."""
    failures = []
    net.register(1, lambda s, m: None, on_failure=lambda d, m, r: failures.append((d, m, r)))
    net.register(2, lambda s, m: None)
    net.set_online(1, False)
    net.send(1, 2, "lost", 10)
    net.loop.run_until(5.0)
    assert failures == [(2, "lost", "sender-offline")]
    assert net.messages_failed == 1


def test_failures_counted_by_reason(net):
    net.register(1, lambda s, m: None, link=LinkSpec(latency_s=0.0, upstream_bytes_per_s=100))
    net.register(2, lambda s, m: None)
    net.send(1, 999, "void", 10)  # unreachable
    net.send(1, 2, "slow", 1000)  # 10 s transfer, lost in flight below
    net.set_online(2, False)
    net.send(1, 2, "down", 10)  # unreachable
    net.set_online(1, False)
    net.send(1, 2, "dark", 10)  # sender-offline
    net.loop.run_until(60.0)
    assert net.failures_by_reason == {
        "unreachable": 2,
        "lost-in-flight": 1,
        "sender-offline": 1,
    }
    assert net.messages_failed == 4


def test_unregister_clears_all_per_node_state(net):
    net.register(1, lambda s, m: None, link=LinkSpec(latency_s=0.0, upstream_bytes_per_s=100))
    net.register(2, lambda s, m: None)
    net.send(1, 2, "x", 1000)  # occupies node 1's uplink for 10 s
    net.control_meter(1).record_sent(0.0, 64)
    assert net.uplink_backlog_s(1) > 0
    net.unregister(1)
    assert 1 not in net.meters
    assert 1 not in net.control_meters
    assert net.uplink_backlog_s(1) == 0.0
    assert not net.is_online(1)
    # Re-registration starts from a clean slate (no duplicate error, no
    # leftover uplink backlog from the previous incarnation).
    net.register(1, lambda s, m: None)
    assert net.uplink_backlog_s(1) == 0.0
    assert net.meters[1].total_sent() == 0


def test_uplink_backlog_tracks_queued_sends(net):
    link = LinkSpec(latency_s=0.0, upstream_bytes_per_s=1000)
    net.register(1, lambda s, m: None, link=link)
    net.register(2, lambda s, m: None)
    assert net.uplink_backlog_s(1) == 0.0
    for _ in range(3):
        net.send(1, 2, "chunk", 1000)  # 1 s of uplink each
    assert net.uplink_backlog_s(1) == pytest.approx(3.0)
    net.loop.run_until(2.0)
    assert net.uplink_backlog_s(1) == pytest.approx(1.0)
    net.loop.run_until(10.0)
    assert net.uplink_backlog_s(1) == 0.0
