"""Chaos primitives on the Transport seam, exercised via SimNetwork.

The chaos API (pause/partition/delay/drop) lives on the :class:`Transport`
base so the simulated and live backends honor a replayed fault plan
identically.  These tests pin the SimNetwork semantics: what gets
buffered, what fails (and with which reason), what is silently lost, and
that a fully healed network returns to the fast no-chaos path.
"""

import pytest

from repro.network.events import EventLoop
from repro.network.simnet import SimNetwork


def make_net(n_nodes=4):
    loop = EventLoop()
    net = SimNetwork(loop)
    received = {i: [] for i in range(n_nodes)}
    failures = {i: [] for i in range(n_nodes)}

    for node_id in range(n_nodes):
        def handler(sender, message, _inbox=received[node_id]):
            _inbox.append((sender, message))

        def on_failure(receiver, message, reason, _log=failures[node_id]):
            _log.append((receiver, message, reason))

        net.register(node_id, handler, on_failure=on_failure)
    return loop, net, received, failures


def drain(loop, seconds=3600.0):
    loop.run_until(loop.now + seconds)


class TestPartition:
    def test_cross_partition_send_fails_with_reason(self):
        loop, net, received, failures = make_net()
        net.set_partition({0: 0, 1: 0, 2: 1, 3: 1})
        net.send(0, 2, "hello", size_bytes=64)
        drain(loop)
        assert received[2] == []
        assert failures[0] == [(2, "hello", "partitioned")]
        assert net.failures_by_reason["partitioned"] == 1

    def test_same_group_unaffected(self):
        loop, net, received, _ = make_net()
        net.set_partition({0: 0, 1: 0, 2: 1, 3: 1})
        net.send(0, 1, "intra", size_bytes=64)
        net.send(2, 3, "intra-b", size_bytes=64)
        drain(loop)
        assert received[1] == [(0, "intra")]
        assert received[3] == [(2, "intra-b")]

    def test_nodes_absent_from_groups_default_to_group_zero(self):
        loop, net, received, failures = make_net()
        net.set_partition({3: 1})  # everyone else implicitly group 0
        net.send(0, 1, "ok", size_bytes=64)
        net.send(0, 3, "blocked", size_bytes=64)
        drain(loop)
        assert received[1] == [(0, "ok")]
        assert failures[0] == [(3, "blocked", "partitioned")]

    def test_heal_restores_delivery_and_reachability(self):
        loop, net, received, _ = make_net()
        net.set_partition({0: 0, 2: 1})
        assert net.partitioned(0, 2)
        assert not net.reachable(0, 2)
        net.heal_partition()
        assert not net.partitioned(0, 2)
        assert net.reachable(0, 2)
        net.send(0, 2, "after-heal", size_bytes=64)
        drain(loop)
        assert received[2] == [(0, "after-heal")]
        # All chaos cleared: the hot path drops back to the None check.
        assert net._chaos is None


class TestPause:
    def test_inbound_buffered_until_resume(self):
        loop, net, received, _ = make_net()
        net.send(0, 1, "early", size_bytes=64)
        drain(loop)
        net.pause(1)
        net.send(0, 1, "while-paused", size_bytes=64)
        drain(loop)
        assert received[1] == [(0, "early")]  # not yet
        net.resume(1)
        assert received[1] == [(0, "early"), (0, "while-paused")]

    def test_outbound_buffered_until_resume(self):
        loop, net, received, _ = make_net()
        net.pause(0)
        net.send(0, 1, "queued", size_bytes=64)
        drain(loop)
        assert received[1] == []
        net.resume(0)
        drain(loop)
        assert received[1] == [(0, "queued")]

    def test_paused_node_is_unreachable_not_failed(self):
        loop, net, _, failures = make_net()
        net.pause(1)
        assert net.is_paused(1)
        assert not net.reachable(0, 1)
        net.send(0, 1, "buffered", size_bytes=64)
        drain(loop)
        # Pause buffers; it never surfaces as a delivery failure.
        assert failures[0] == []
        assert "paused" not in net.failures_by_reason

    def test_resume_unknown_or_unpaused_is_noop(self):
        _, net, _, _ = make_net()
        net.resume(1)  # never paused
        net.pause(1)
        net.resume(1)
        net.resume(1)  # double resume
        assert not net.is_paused(1)
        assert net._chaos is None

    def test_pause_unknown_node_raises(self):
        _, net, _, _ = make_net()
        with pytest.raises(KeyError):
            net.pause(99)


class TestDelayAndDrop:
    def test_extra_delay_defers_delivery(self):
        loop, net, received, _ = make_net()
        net.send(0, 1, "fast", size_bytes=64)
        drain(loop)
        baseline_t = loop.now

        net.set_extra_delay(5.0)
        net.send(0, 1, "slow", size_bytes=64)
        loop.run_until(baseline_t + 4.0)
        assert len(received[1]) == 1  # still in flight
        loop.run_until(baseline_t + 3600.0)
        assert received[1] == [(0, "fast"), (0, "slow")]
        net.set_extra_delay(0.0)
        assert net._chaos is None

    def test_drop_is_seeded_and_replayable(self):
        losses = []
        for _ in range(2):
            loop, net, received, _ = make_net()
            net.set_drop(0.5, seed=13)
            for i in range(40):
                net.send(0, 1, i, size_bytes=64)
            drain(loop)
            losses.append([m for _, m in received[1]])
        assert losses[0] == losses[1]
        assert 0 < len(losses[0]) < 40

    def test_drop_counts_but_never_notifies_sender(self):
        loop, net, received, failures = make_net()
        net.set_drop(1.0, seed=1)
        net.send(0, 1, "gone", size_bytes=64)
        drain(loop)
        assert received[1] == []
        assert failures[0] == []  # silent loss, like the real network
        assert net.failures_by_reason["chaos-drop"] == 1
        net.set_drop(0.0)
        assert net._chaos is None

    def test_validation(self):
        _, net, _, _ = make_net()
        with pytest.raises(ValueError):
            net.set_extra_delay(-1.0)
        with pytest.raises(ValueError):
            net.set_drop(1.5)


class TestReachable:
    def test_offline_beats_chaos(self):
        _, net, _, _ = make_net()
        net.set_online(1, False)
        assert not net.reachable(0, 1)
        assert net.reachable(0, 2)

    def test_combined_faults_compose(self):
        _, net, _, _ = make_net()
        net.set_partition({0: 0, 1: 1})
        net.pause(2)
        assert not net.reachable(0, 1)  # partitioned
        assert not net.reachable(0, 2)  # peer paused
        assert not net.reachable(2, 3)  # self paused
        net.heal_partition()
        assert net.reachable(0, 1)
        net.resume(2)
        assert net.reachable(0, 2)
        assert net._chaos is None
