"""Tests for the discrete-event loop."""

import pytest

from repro.network.events import EventLoop


def test_events_run_in_time_order():
    loop = EventLoop()
    order = []
    loop.schedule(2.0, lambda: order.append("b"))
    loop.schedule(1.0, lambda: order.append("a"))
    loop.schedule(3.0, lambda: order.append("c"))
    loop.run_until(10.0)
    assert order == ["a", "b", "c"]


def test_simultaneous_events_fifo():
    loop = EventLoop()
    order = []
    for i in range(5):
        loop.schedule(1.0, lambda i=i: order.append(i))
    loop.run_until(2.0)
    assert order == [0, 1, 2, 3, 4]


def test_run_until_stops_at_deadline():
    loop = EventLoop()
    fired = []
    loop.schedule(5.0, lambda: fired.append("late"))
    processed = loop.run_until(4.0)
    assert processed == 0
    assert fired == []
    assert loop.now == 4.0
    loop.run_until(6.0)
    assert fired == ["late"]


def test_events_can_schedule_events():
    loop = EventLoop()
    fired = []

    def chain():
        fired.append(loop.now)
        if len(fired) < 3:
            loop.schedule(1.0, chain)

    loop.schedule(1.0, chain)
    loop.run_until(10.0)
    assert fired == [1.0, 2.0, 3.0]


def test_schedule_at_absolute_time():
    loop = EventLoop(start_time=10.0)
    fired = []
    loop.schedule_at(12.5, lambda: fired.append(loop.now))
    loop.run_until(20.0)
    assert fired == [12.5]


def test_negative_delay_rejected():
    loop = EventLoop()
    with pytest.raises(ValueError):
        loop.schedule(-1.0, lambda: None)


def test_max_events_guard():
    loop = EventLoop()

    def forever():
        loop.schedule(0.0, forever)

    loop.schedule(0.0, forever)
    processed = loop.run_until(1.0, max_events=100)
    assert processed == 100


def test_run_all_drains_queue():
    loop = EventLoop()
    fired = []
    for delay in (5.0, 1.0, 3.0):
        loop.schedule(delay, lambda d=delay: fired.append(d))
    assert loop.run_all() == 3
    assert fired == [1.0, 3.0, 5.0]
    assert loop.pending() == 0


def test_time_never_goes_backwards():
    loop = EventLoop()
    loop.run_until(5.0)
    loop.schedule(0.0, lambda: None)
    loop.run_until(3.0)  # earlier deadline
    assert loop.now == 5.0
