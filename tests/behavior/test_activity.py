"""Tests for the exponentially decaying activity model."""

import numpy as np
import pytest

from repro.behavior.activity import ActivityModel


def test_peak_at_join():
    model = ActivityModel(peak_per_day=20.0, floor_per_day=0.5)
    assert model.rate_per_day(0.0) == pytest.approx(20.0)


def test_decays_below_one_per_day():
    """Sec. 5.1: activity decreases exponentially to < 1 interaction/day."""
    model = ActivityModel()
    assert model.rate_per_day(30.0) < 1.0


def test_floor_is_asymptote():
    model = ActivityModel(floor_per_day=0.5)
    assert model.rate_per_day(1000.0) == pytest.approx(0.5, abs=1e-6)


def test_monotone_decrease():
    model = ActivityModel()
    rates = [model.rate_per_day(d) for d in range(0, 20)]
    assert all(a >= b for a, b in zip(rates, rates[1:]))


def test_vectorized_matches_scalar():
    model = ActivityModel()
    ages = np.array([0.0, 1.0, 5.0, 30.0])
    vector = model.rates_per_day(ages)
    for age, rate in zip(ages, vector):
        assert rate == pytest.approx(model.rate_per_day(float(age)))


def test_sample_interactions_poisson_mean():
    model = ActivityModel(peak_per_day=10.0, floor_per_day=10.0, decay_per_day=0.0)
    rng = np.random.default_rng(0)
    draws = model.sample_interactions(np.zeros(20_000), epoch_days=1.0, rng=rng)
    assert draws.mean() == pytest.approx(10.0, rel=0.05)


def test_negative_age_rejected():
    model = ActivityModel()
    with pytest.raises(ValueError):
        model.rate_per_day(-1.0)
    with pytest.raises(ValueError):
        model.rates_per_day(np.array([-1.0]))


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        ActivityModel(peak_per_day=1.0, floor_per_day=2.0)
    with pytest.raises(ValueError):
        ActivityModel(floor_per_day=-1.0)


def test_invalid_epoch_rejected():
    model = ActivityModel()
    with pytest.raises(ValueError):
        model.sample_interactions(np.zeros(3), epoch_days=0.0, rng=np.random.default_rng(0))
