"""Tests for join schedules and departure selection."""

import numpy as np
import pytest

from repro.behavior.churn import join_epochs, top_online_nodes


def test_join_epochs_within_window():
    rng = np.random.default_rng(0)
    p = np.random.default_rng(1).random(1000)
    epochs = join_epochs(p, join_window_epochs=24, rng=rng)
    assert epochs.min() >= 0
    assert epochs.max() <= 23


def test_highly_available_nodes_join_earlier():
    rng = np.random.default_rng(0)
    p = np.concatenate([np.full(2000, 0.9), np.full(2000, 0.05)])
    epochs = join_epochs(p, join_window_epochs=24, rng=rng)
    assert epochs[:2000].mean() < epochs[2000:].mean()


def test_invalid_window_rejected():
    with pytest.raises(ValueError):
        join_epochs(np.array([0.5]), 0, np.random.default_rng(0))


def test_top_online_nodes_sorted_by_probability():
    p = np.array([0.1, 0.9, 0.5, 0.95, 0.2])
    top = top_online_nodes(p, fraction=0.4)
    assert top == [3, 1]


def test_top_online_nodes_minimum_one():
    assert len(top_online_nodes(np.array([0.1, 0.2]), fraction=0.01)) == 1


def test_top_fraction_bounds():
    with pytest.raises(ValueError):
        top_online_nodes(np.array([0.5]), fraction=0.0)
    with pytest.raises(ValueError):
        top_online_nodes(np.array([0.5]), fraction=1.5)
