"""Tests for the storage-capacity model."""

import numpy as np
import pytest

from repro.behavior.capacity import sample_capacities


def test_median_matches_paper():
    rng = np.random.default_rng(0)
    capacities = sample_capacities(50_000, rng)
    assert np.median(capacities) == pytest.approx(50.0, rel=0.03)


def test_minimum_enforced():
    rng = np.random.default_rng(0)
    capacities = sample_capacities(10_000, rng, sigma_profiles=60.0, min_profiles=5.0)
    assert capacities.min() >= 5.0


def test_spread_controlled_by_sigma():
    rng = np.random.default_rng(0)
    tight = sample_capacities(5000, rng, sigma_profiles=1.0)
    rng = np.random.default_rng(0)
    wide = sample_capacities(5000, rng, sigma_profiles=25.0)
    assert wide.std() > tight.std()


def test_validation():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        sample_capacities(0, rng)
    with pytest.raises(ValueError):
        sample_capacities(10, rng, median_profiles=-5)
