"""Tests for the online-time model."""

import numpy as np
import pytest

from repro.behavior.online import (
    DIURNAL_PROFILE,
    TIMEZONE_OFFSETS,
    TIMEZONE_PROBABILITIES,
    OnlineModel,
    sample_online_probabilities,
    sample_timezones,
)


@pytest.fixture()
def rng():
    return np.random.default_rng(42)


class TestOnlineProbabilities:
    def test_paper_low_fraction(self, rng):
        """~60 % of nodes available less than 20 % of the time (Sec. 5.1)."""
        p = sample_online_probabilities(20_000, rng)
        assert np.mean(p < 0.2) == pytest.approx(0.6, abs=0.03)

    def test_few_highly_available_nodes(self, rng):
        p = sample_online_probabilities(20_000, rng)
        assert np.mean(p > 0.9) < 0.05

    def test_bounds(self, rng):
        p = sample_online_probabilities(5_000, rng)
        assert p.min() >= 0.02
        assert p.max() <= 1.0

    def test_invalid_n(self, rng):
        with pytest.raises(ValueError):
            sample_online_probabilities(0, rng)


class TestTimezones:
    def test_mix_matches_paper(self, rng):
        tz = sample_timezones(30_000, rng)
        for offset, expected in zip(TIMEZONE_OFFSETS, TIMEZONE_PROBABILITIES):
            assert np.mean(tz == offset) == pytest.approx(expected, abs=0.02)


class TestDiurnalProfile:
    def test_mean_is_one(self):
        assert DIURNAL_PROFILE.mean() == pytest.approx(1.0)

    def test_evening_peak_and_night_trough(self):
        assert DIURNAL_PROFILE[19] > DIURNAL_PROFILE[3]


class TestOnlineModel:
    def test_matrix_shape(self, rng):
        model = OnlineModel(np.array([0.5, 0.1]), np.array([0, 8]))
        matrix = model.generate_matrix(48, rng)
        assert matrix.shape == (2, 48)
        assert matrix.dtype == bool

    def test_marginal_tracks_base_probability(self, rng):
        p = np.full(400, 0.3)
        model = OnlineModel(p, np.zeros(400, dtype=int))
        matrix = model.generate_matrix(24 * 14, rng)
        assert matrix.mean() == pytest.approx(0.3, abs=0.05)

    def test_always_online_nodes_never_offline(self, rng):
        model = OnlineModel(np.array([1.0, 0.2]), np.array([0, 0]))
        matrix = model.generate_matrix(24 * 7, rng)
        assert matrix[0].all()

    def test_low_p_nodes_follow_diurnal_rhythm(self, rng):
        p = np.full(2000, 0.15)
        model = OnlineModel(p, np.zeros(2000, dtype=int))
        matrix = model.generate_matrix(24 * 7, rng)
        by_hour = matrix.reshape(2000, 7, 24).mean(axis=(0, 1))
        assert by_hour[19] > 2 * by_hour[3]

    def test_high_p_nodes_barely_modulated(self, rng):
        p = np.full(500, 0.9)
        model = OnlineModel(p, np.zeros(500, dtype=int))
        matrix = model.generate_matrix(24 * 7, rng)
        by_hour = matrix.reshape(500, 7, 24).mean(axis=(0, 1))
        assert by_hour.min() > 0.6 * by_hour.max()

    def test_sessions_are_bursty(self, rng):
        """Mean session length tracks the configured burstiness."""
        model = OnlineModel(
            np.full(300, 0.3), np.zeros(300, dtype=int), mean_session_epochs=3.0
        )
        matrix = model.generate_matrix(24 * 14, rng)
        # Count on-runs.
        lengths = []
        for row in matrix[:50]:
            run = 0
            for value in row:
                if value:
                    run += 1
                elif run:
                    lengths.append(run)
                    run = 0
            if run:
                lengths.append(run)
        assert 1.5 < np.mean(lengths) < 6.0

    def test_validation(self):
        with pytest.raises(ValueError):
            OnlineModel(np.array([0.5]), np.array([0, 1]))
        with pytest.raises(ValueError):
            OnlineModel(np.array([1.5]), np.array([0]))
        with pytest.raises(ValueError):
            OnlineModel(np.array([0.5]), np.array([0]), mean_session_epochs=0.5)

    def test_invalid_epoch_count(self, rng):
        model = OnlineModel(np.array([0.5]), np.array([0]))
        with pytest.raises(ValueError):
            model.generate_matrix(0, rng)
