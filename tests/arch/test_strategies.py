"""Unit tests for the pluggable architecture strategies (repro.arch)."""

import random

import numpy as np
import pytest

from repro.arch import (
    Architecture,
    MirrorReadCache,
    SocialMap,
    SocialPlacement,
    SocialRouting,
    SoupSelectionStrategy,
    SuperPeerEconomy,
    architecture_names,
    build_social_map,
    create_architecture,
    derive_dht_id,
    gini,
)
from repro.arch.social import ANCHOR_BITS, cluster_anchor
from repro.arch.superpeer import SUPERPEER_RANK
from repro.core.config import SoupConfig


class TestRegistry:
    def test_all_four_registered(self):
        names = architecture_names()
        for expected in ("soup", "superpeer", "social_dht", "cache"):
            assert expected in names

    def test_unknown_architecture_raises_with_known_list(self):
        with pytest.raises(ValueError, match="soup"):
            create_architecture("peerson")

    def test_soup_binds_no_strategies(self):
        arch = create_architecture("soup")
        assert arch.selection is None
        assert arch.placement is None
        assert arch.routing is None
        assert arch.read_path is None
        assert arch.metrics() == {}

    def test_factories_read_config_knobs(self):
        class Config:
            arch_cache_capacity = 3
            arch_cache_ttl_epochs = 2
            arch_superpeer_fraction = 0.2
            arch_superpeer_min_uptime = 0.5
            arch_superpeer_slots = 7

        cache = create_architecture("cache", Config()).read_path
        assert cache.capacity == 3 and cache.ttl_epochs == 2
        economy = create_architecture("superpeer", Config()).selection
        assert economy.fraction == 0.2
        assert economy.min_uptime == 0.5
        assert economy.slots_override == 7

    def test_metrics_groups_merge_extra(self):
        arch = create_architecture("cache")
        arch.extra_metrics["dht"] = {"mean_lookup_hops": 2.0}
        groups = arch.metrics()
        assert "cache" in groups and groups["dht"] == {"mean_lookup_hops": 2.0}


class TestGini:
    def test_uniform_is_zero(self):
        assert gini(np.array([5.0, 5.0, 5.0, 5.0])) == pytest.approx(0.0)

    def test_concentrated_approaches_one(self):
        counts = np.zeros(100)
        counts[0] = 1000.0
        assert gini(counts) == pytest.approx(0.99)

    def test_empty_and_zero_are_zero(self):
        assert gini(np.array([])) == 0.0
        assert gini(np.zeros(10)) == 0.0


class _View:
    def __init__(self, uptime, capacities, electable=None):
        self._uptime = np.asarray(uptime, dtype=float)
        self.capacities = np.asarray(capacities, dtype=float)
        self._electable = electable

    def observed_uptime(self, epoch):
        return self._uptime

    def is_electable(self, node_id):
        return self._electable is None or node_id in self._electable


class TestSuperPeerEconomy:
    def test_election_ranks_by_uptime_then_capacity(self):
        economy = SuperPeerEconomy(fraction=0.25, min_uptime=0.6)
        view = _View(
            uptime=[0.9, 0.9, 0.3, 0.95, 0.7, 0.9, 0.1, 0.65],
            capacities=[10, 50, 99, 10, 10, 20, 99, 10],
        )
        economy.begin_round(view, epoch=0)
        # quota = round(8 * 0.25) = 2: node 3 (uptime 0.95), then node 1
        # (0.9 uptime, highest capacity among the 0.9 tie).
        assert economy.superpeers == [3, 1]
        assert economy.free_slots == {3: 5, 1: 25}

    def test_weak_owner_gets_boost_strong_owner_does_not(self):
        economy = SuperPeerEconomy(fraction=0.25, min_uptime=0.6)
        view = _View(uptime=[0.9, 0.8, 0.2, 0.3], capacities=[10, 10, 10, 10])
        economy.begin_round(view, epoch=0)
        ranking = [(2, 0.4), (3, 0.3)]
        boosted = economy.augment_ranking(2, ranking, exclude=())
        assert boosted[0][1] == SUPERPEER_RANK
        offered = {nid for nid, rank in boosted if rank == SUPERPEER_RANK}
        assert offered == set(economy.superpeers)
        untouched = economy.augment_ranking(0, ranking, exclude=())
        assert untouched == list(ranking)

    def test_commit_consumes_slots_until_full(self):
        economy = SuperPeerEconomy(fraction=0.5, min_uptime=0.6, slots_override=1)
        view = _View(uptime=[0.9, 0.9, 0.2, 0.2], capacities=[10, 10, 10, 10])
        economy.begin_round(view, epoch=0)
        superpeer = economy.superpeers[0]
        economy.on_commit(2, [superpeer], epoch=0)
        assert economy.free_slots[superpeer] == 0
        boosted = economy.augment_ranking(3, [(2, 0.1)], exclude=())
        assert superpeer not in {nid for nid, _ in boosted if _ == SUPERPEER_RANK}

    def test_selection_respects_exclusions(self):
        economy = SuperPeerEconomy(fraction=0.5, min_uptime=0.6)
        view = _View(uptime=[0.9, 0.9, 0.2], capacities=[10, 10, 10])
        economy.begin_round(view, epoch=0)
        result = economy.select(
            2, [(0, 0.5), (1, 0.5)], (), SoupConfig(), random.Random(0),
            exclude={0},
        )
        assert 0 not in result.mirrors
        assert 2 not in result.mirrors

    def test_dict_backed_view_matches_deployment_shape(self):
        economy = SuperPeerEconomy(fraction=0.5, min_uptime=0.6)
        uptime = {101: 0.9, 205: 0.95, 307: 0.1}
        caps = {101: 10.0, 205: 10.0, 307: 10.0}

        class DictView:
            capacities = caps

            def observed_uptime(self, epoch):
                return uptime

            def is_electable(self, node_id):
                return True

        economy.begin_round(DictView(), epoch=0)
        assert economy.superpeers == [205, 101]


class TestSocialDht:
    def test_cluster_anchor_is_median_friend(self):
        assert cluster_anchor([10, 90, 50], own_dht_id=7) == 50
        assert cluster_anchor([], own_dht_id=7) == 7

    def test_map_key_takes_anchor_high_bits_keeps_low_bits(self):
        social_map = SocialMap()
        anchor = 0xABCDEF12_00000000
        key = 0x11111111_22222222
        social_map.register_anchor(key, anchor)
        placement = SocialPlacement(social_map)
        mapped = placement.map_key(key)
        low_mask = (1 << ANCHOR_BITS) - 1
        assert mapped & low_mask == key & low_mask
        assert mapped & ~low_mask == anchor & ~low_mask

    def test_unanchored_key_passes_through(self):
        placement = SocialPlacement(SocialMap())
        assert placement.map_key(1234) == 1234
        assert placement.metrics()["keys_unanchored"] == 1.0

    def test_build_social_map_and_shortcuts(self):
        social_map = SocialMap()
        friends_of = {1: [2, 3], 2: [1], 3: [1]}
        build_social_map(social_map, friends_of, dht_id_of=lambda n: n * 100)
        assert social_map.anchors[100] == cluster_anchor([200, 300], 100)
        routing = SocialRouting(social_map)
        assert tuple(routing.extra_candidates(100, key=0)) == (200, 300)
        assert tuple(routing.extra_candidates(999, key=0)) == ()

    def test_publish_lookup_agree_under_placement(self):
        from repro.dht.pastry import PastryOverlay
        from repro.dht.storage import DirectoryEntry

        rng = random.Random(42)
        members = sorted(rng.getrandbits(64) for _ in range(24))
        social_map = SocialMap()
        friends_of = {m: [members[(i + 1) % len(members)]]
                      for i, m in enumerate(members)}
        build_social_map(social_map, friends_of, dht_id_of=lambda n: n)

        overlay = PastryOverlay()
        for member in members:
            overlay.join(member, members[0] if member != members[0] else None)
        overlay.set_placement(SocialPlacement(social_map))

        owner = members[5]
        overlay.publish(owner, owner, DirectoryEntry(soup_id=owner))
        entry, route = overlay.lookup(members[17], owner)
        assert route.delivered
        assert entry is not None and entry.soup_id == owner

    def test_routing_policy_never_lengthens_routes(self):
        from repro.dht.pastry import PastryOverlay

        rng = random.Random(7)
        members = sorted(rng.getrandbits(64) for _ in range(32))

        plain = PastryOverlay()
        shortcut = PastryOverlay()
        for member in members:
            bootstrap = members[0] if member != members[0] else None
            plain.join(member, bootstrap)
            shortcut.join(member, bootstrap)

        social_map = SocialMap()
        friends_of = {m: rng.sample(members, 4) for m in members}
        build_social_map(social_map, friends_of, dht_id_of=lambda n: n)
        shortcut.set_routing_policy(SocialRouting(social_map))

        for key in [rng.getrandbits(64) for _ in range(40)]:
            base = plain.route(members[0], key)
            routed = shortcut.route(members[0], key)
            assert routed.responsible == base.responsible
            assert routed.hops <= base.hops


class TestMirrorReadCache:
    def test_miss_then_hit_within_ttl(self):
        cache = MirrorReadCache(capacity=4, ttl_epochs=3)
        assert not cache.try_serve(reader=1, owner=9, epoch=0)
        cache.on_fetch(reader=1, owner=9, epoch=0, success=True)
        assert cache.try_serve(reader=1, owner=9, epoch=2)
        assert cache.metrics()["hits"] == 1.0
        assert cache.metrics()["mean_staleness_epochs"] == 2.0

    def test_ttl_expiry_drops_entry(self):
        cache = MirrorReadCache(capacity=4, ttl_epochs=3)
        cache.on_fetch(1, 9, epoch=0, success=True)
        assert not cache.try_serve(1, 9, epoch=3)
        assert cache.metrics()["expirations"] == 1.0
        assert list(cache.fresh_readers(9)) == []

    def test_failed_fetch_not_cached(self):
        cache = MirrorReadCache()
        cache.on_fetch(1, 9, epoch=0, success=False)
        assert not cache.try_serve(1, 9, epoch=0)

    def test_lru_eviction_at_capacity(self):
        cache = MirrorReadCache(capacity=2, ttl_epochs=10)
        cache.on_fetch(1, 10, epoch=0, success=True)
        cache.on_fetch(1, 20, epoch=0, success=True)
        assert cache.try_serve(1, 10, epoch=1)  # 10 now most recent
        cache.on_fetch(1, 30, epoch=1, success=True)  # evicts 20
        assert not cache.try_serve(1, 20, epoch=1)
        assert cache.try_serve(1, 10, epoch=1)
        assert cache.metrics()["evictions"] == 1.0

    def test_invalidate_clears_all_readers(self):
        cache = MirrorReadCache()
        cache.on_fetch(1, 9, epoch=0, success=True)
        cache.on_fetch(2, 9, epoch=0, success=True)
        cache.invalidate(9)
        assert not cache.try_serve(1, 9, epoch=0)
        assert not cache.try_serve(2, 9, epoch=0)
        assert cache.metrics()["invalidations"] == 2.0

    def test_available_owners_requires_online_fresh_reader(self):
        cache = MirrorReadCache(ttl_epochs=2)
        cache.on_fetch(reader=1, owner=9, epoch=0, success=True)
        online = np.array([True, True])
        assert cache.available_owners(online, epoch=1) == [9]
        assert cache.available_owners(np.array([True, False]), epoch=1) == []
        assert cache.available_owners(online, epoch=2) == []  # stale

    def test_rejects_degenerate_knobs(self):
        with pytest.raises(ValueError):
            MirrorReadCache(capacity=0)
        with pytest.raises(ValueError):
            MirrorReadCache(ttl_epochs=0)


class TestDhtProbe:
    def test_derive_dht_id_deterministic_64bit(self):
        a, b = derive_dht_id(17), derive_dht_id(18)
        assert a == derive_dht_id(17)
        assert a != b
        assert 0 <= a < 1 << 64

    def test_probe_counts_joins_publishes_lookups(self):
        from repro.arch import DhtProbe

        probe = DhtProbe(Architecture(name="soup"))
        online = np.ones(8, dtype=bool)
        probe.begin_epoch(0, online)
        for node_id in range(6):
            probe.on_join(node_id)
        probe.on_publish(owner=0, mirrors=[1, 2], epoch=0)
        probe.on_lookup(reader=3, owner=0)
        metrics = probe.metrics()
        assert metrics["joins"] == 6.0
        assert metrics["publishes"] == 1.0
        assert metrics["lookups"] == 1.0
        assert metrics["lookup_failures"] == 0.0
        assert metrics["control_messages"] > 0.0

    def test_departed_member_loses_entries(self):
        from repro.arch import DhtProbe

        probe = DhtProbe(Architecture(name="soup"))
        online = np.ones(4, dtype=bool)
        probe.begin_epoch(0, online)
        for node_id in range(4):
            probe.on_join(node_id)
        probe.on_publish(owner=0, mirrors=[1], epoch=0)
        probe.on_depart(0)
        assert probe.metrics()["departures"] == 1.0
