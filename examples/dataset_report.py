"""Dataset report: regenerate Table 3 and inspect the synthetic graphs.

Shows the three evaluation datasets (Facebook/WOSN, Epinions, Slashdot) at
full-scale spec and as generated at a laptop-friendly scale, including the
degree statistics the mirror selection exploits.

Run with:  python examples/dataset_report.py [scale]
"""

import sys

from repro.graphs.datasets import DATASET_SPECS, generate_dataset, table3_rows
from repro.graphs.stats import degree_ccdf, graph_stats


def main(scale: float = 0.01) -> None:
    print("Table 3 (paper, full scale)")
    print(f"{'dataset':<10} {'nodes':>8} {'edges':>10} {'avg degree':>10}")
    for name, nodes, edges, degree in table3_rows(scale=1.0):
        print(f"{name:<10} {nodes:>8} {edges:>10} {degree:>10}")

    print(f"\nGenerated graphs at scale={scale}")
    header = f"{'dataset':<10} {'nodes':>7} {'edges':>8} {'avg deg':>8} {'median':>7} {'max':>6} {'gini':>6} {'clustering':>10}"
    print(header)
    for name in sorted(DATASET_SPECS):
        graph = generate_dataset(name, scale=scale, seed=0)
        stats = graph_stats(graph)
        print(
            f"{name:<10} {stats.nodes:>7} {stats.edges:>8} "
            f"{stats.average_degree:>8.2f} {stats.median_degree:>7.1f} "
            f"{stats.max_degree:>6} {stats.degree_gini:>6.2f} "
            f"{stats.clustering_sample:>10.3f}"
        )

    print("\nDegree CCDF tail (facebook) — the hubs mirror selection leans on:")
    graph = generate_dataset("facebook", scale=scale, seed=0)
    ccdf = degree_ccdf(graph)
    for degree, fraction in ccdf[:: max(1, len(ccdf) // 10)]:
        print(f"  P(degree >= {degree:>4}) = {fraction:.4f}")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.01)
