"""Quickstart: a five-minute tour of the SOUP middleware.

Builds a small SOUP network in-process, walks through the paper's core
user story — join, befriend, encrypt + replicate a profile, survive going
offline, receive messages buffered by mirrors — and prints what happens.

Run with:  python examples/quickstart.py
"""

from repro.core.config import SoupConfig
from repro.dht.bootstrap import BootstrapRegistry
from repro.dht.pastry import PastryOverlay
from repro.network.events import EventLoop
from repro.network.simnet import SimNetwork
from repro.node.middleware import SoupNode
from repro.node.profile import DataItem


def main() -> None:
    # --- infrastructure: event loop, metered network, Pastry overlay ----
    loop = EventLoop()
    network = SimNetwork(loop)
    overlay = PastryOverlay()
    registry = BootstrapRegistry()
    nodes = {}

    def make_node(name, seed, mobile=False):
        node = SoupNode(
            name=name,
            network=network,
            overlay=overlay,
            registry=registry,
            peer_resolver=nodes.get,
            config=SoupConfig(),
            seed=seed,
            is_mobile=mobile,
            key_bits=512,
        )
        nodes[node.node_id] = node
        return node

    # --- a bootstrap node plus a handful of users ------------------------
    boot = make_node("bootstrap", seed=1)
    boot.join()
    boot.make_bootstrap_node()
    print(f"bootstrap node up: {boot!r}")

    alice = make_node("alice", seed=2)
    bob = make_node("bob", seed=3)
    peers = [make_node(f"peer{i}", seed=10 + i) for i in range(6)]
    for node in [alice, bob] + peers:
        node.join()  # picks a bootstrap node from the public registry
    print(f"{len(nodes)} nodes joined the overlay")

    # Users meet each other (bootstrapping: recommendations flow).
    everyone = [boot, alice, bob] + peers
    for node in everyone:
        for other in everyone:
            if node is not other:
                node.contact(other.node_id)

    # --- friendship: signed handshake + ABE attribute-key exchange --------
    alice.befriend(bob.node_id)
    print(f"alice and bob are friends; bob can decrypt alice's data: "
          f"{bob.security.can_decrypt_from(alice.node_id)}")

    # --- alice posts data and replicates it to mirrors --------------------
    alice.post_item(DataItem.text(4_000, created_at=loop.now))
    alice.post_item(DataItem.photo(80_000, created_at=loop.now))
    mirrors = alice.run_selection_round()
    names = [nodes[m].name for m in mirrors]
    print(f"alice selected {len(mirrors)} mirrors: {names}")
    loop.run_until(loop.now + 10)

    # Mirrors hold ciphertext they cannot read; friends can.
    ciphertext = alice.security.encrypt_replica(b"alice's private post")
    print(f"replica is {len(ciphertext.payload)} bytes of ciphertext "
          f"(policy: {ciphertext.policy.describe()})")
    print(f"bob decrypts it: {bob.security.decrypt_from(alice.node_id, ciphertext)!r}")

    # --- alice goes offline; her data stays available ----------------------
    alice.go_offline()
    fetched = bob.request_profile(alice.node_id)
    print(f"alice offline; bob fetched her profile from a mirror: {fetched}")

    # Bob messages offline alice; a mirror buffers it (Sec. 3.5).
    bob.send_message(alice.node_id, "ping me when you're back!")
    loop.run_until(loop.now + 5)

    alice.go_online()
    loop.run_until(loop.now + 5)
    inbox = [
        (o.payload or {}).get("text") for o in alice.applications.messages_received()
    ]
    print(f"alice returned online and collected her inbox: {inbox}")

    # --- traffic accounting ------------------------------------------------
    meter = network.meters[alice.node_id]
    print(f"alice's traffic: sent {meter.total_sent()/1024:.1f} KB, "
          f"received {meter.total_received()/1024:.1f} KB")


if __name__ == "__main__":
    main()
