"""Mobile-friendly SOUP: phones relaying through a gateway.

Demonstrates Sec. 3.3 and the Sec. 7 mobile findings: mobile nodes stay
off the DHT (their publish/lookup operations relay through a gateway),
never mirror for others by default, and still get full data availability
because their data is mirrored at desktop nodes.

Run with:  python examples/mobile_social_app.py
"""

from repro.core.config import SoupConfig
from repro.dht.bootstrap import BootstrapRegistry
from repro.dht.pastry import PastryOverlay
from repro.network.events import EventLoop
from repro.network.simnet import SimNetwork
from repro.node.middleware import SoupNode
from repro.node.profile import DataItem


def main() -> None:
    loop = EventLoop()
    network = SimNetwork(loop)
    overlay = PastryOverlay()
    registry = BootstrapRegistry()
    nodes = {}

    def make_node(name, seed, mobile=False):
        node = SoupNode(
            name=name,
            network=network,
            overlay=overlay,
            registry=registry,
            peer_resolver=nodes.get,
            config=SoupConfig(),
            seed=seed,
            is_mobile=mobile,
            key_bits=512,
        )
        nodes[node.node_id] = node
        return node

    gateway = make_node("gateway", seed=1)
    gateway.join()
    gateway.make_bootstrap_node()
    desktops = [make_node(f"desktop{i}", seed=10 + i) for i in range(8)]
    for node in desktops:
        node.join()
    phone = make_node("phone", seed=42, mobile=True)
    phone.join(bootstrap_id=gateway.node_id)
    print(f"phone joined via gateway; in overlay: {phone.node_id in overlay}")

    for node in desktops + [gateway]:
        phone.contact(node.node_id)
        node.contact(phone.node_id)

    # The phone shares a photo and replicates its profile — only to
    # desktops (mobile mirroring is disabled by default, saving battery).
    phone.post_item(DataItem.photo(120_000, created_at=loop.now))
    mirrors = phone.run_selection_round()
    loop.run_until(loop.now + 10)
    print(f"phone's mirrors: {[nodes[m].name for m in mirrors]}")
    assert all(not nodes[m].is_mobile for m in mirrors)

    # Lookups relay through the gateway; the relay traffic is metered on
    # the gateway's control link (Fig. 14a's mobile-relay cost).
    for desktop in desktops:
        phone.lookup_user(desktop.node_id)
    relay = network.control_meter(gateway.node_id)
    print(f"gateway relay traffic: {relay.total_sent()/1024:.1f} KB sent, "
          f"{relay.total_received()/1024:.1f} KB received")

    # The phone disconnects (high mobile churn) — its data stays up.
    phone.go_offline()
    reader = desktops[0]
    reader.befriend(gateway.node_id)  # unrelated action keeps network lively
    fetched = reader.request_profile(phone.node_id)
    print(f"phone offline; desktop fetched the phone's profile from a mirror: {fetched}")

    # Messages sent meanwhile are buffered and delivered on reconnect.
    reader.send_message(phone.node_id, "saw your photo!")
    loop.run_until(loop.now + 5)
    phone.go_online()
    loop.run_until(loop.now + 5)
    inbox = [
        (o.payload or {}).get("text") for o in phone.applications.messages_received()
    ]
    print(f"phone reconnected; inbox: {inbox}")


if __name__ == "__main__":
    main()
