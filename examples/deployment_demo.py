"""Deployment demo: the paper's 31-user deployment, emulated end to end.

Recreates Sec. 7: 27 desktop users plus 4 phones behind one gateway, the
measured workload (282 friendships, 204 photos, 1189 messages), periodic
selection rounds — then prints the lessons-learned numbers: control
overhead at the bootstrap node, the busiest user's traffic, mirror-set
stability, and the no-data-loss check.

Run with:  python examples/deployment_demo.py
"""

import numpy as np

from repro.deploy.emulation import Deployment
from repro.deploy.traffic import MirrorLoadModel


def main() -> None:
    print("building the 31-node deployment (27 desktop + 4 mobile)...")
    deployment = Deployment(n_desktop=27, n_mobile=4, seed=7)
    report = deployment.run(duration_s=1800.0, selection_rounds=15)

    print(f"\nworkload: {report.friendships} friendships, "
          f"{report.photos_shared} photos, {report.messages_sent} messages")
    print(f"profile requests: {report.profile_requests}, "
          f"failures: {report.profile_failures} "
          f"(availability {report.availability:.2%} — the paper observed no loss)")

    gateway = np.array([kb for _, kb in report.gateway_series])
    print(f"\n[Fig.14a] gateway DHT traffic: peak {gateway.max():.1f} KB/s "
          f"(paper: 20-40 KB/s on join/leave), "
          f"busy {np.sum(gateway > 5)} of {len(gateway)} seconds")

    user = np.array([kb for _, kb in report.busiest_user_series])
    print(f"[Fig.14b] busiest user ({report.busiest_user}): "
          f"peak {user.max():.0f} KB/s at album publishing, "
          f"idle {np.mean(user < 5):.0%} of the time")

    variance = report.mirror_variance_by_round
    print(f"[Fig.14c] mirror-set difference per round: "
          + " ".join(f"{v:.1f}" for v in variance))
    print(f"          (stabilizes near 1 — mostly the random exploration node)")

    print("\n[Fig.15] one mirror serving 20 profiles (206 MB):")
    for result in MirrorLoadModel(seed=7).sweep(duration_s=120):
        print(f"  {result.request_rate:>4.0f} req/s -> mean "
              f"{result.mean_kb_per_s:>5.0f} KB/s, peak {result.peak_kb_per_s:>5.0f} KB/s, "
              f"{result.requests_timed_out} timeouts")


if __name__ == "__main__":
    main()
