"""Attack resilience: slander and sybil flooding against SOUP.

Reproduces the paper's Sec. 5.2.6 story at example scale: a clean baseline,
a 50 % slander attack, and a sybil flood with as many attacker identities
as half the honest population — printing how availability, replica
overhead and the protective-dropping blacklist respond.

Run with:  python examples/attack_resilience.py
"""

from repro.sim.engine import run_scenario
from repro.sim.scenario import ScenarioConfig


def describe(name: str, result) -> None:
    print(f"\n--- {name} ---")
    daily = result.daily_availability()
    print("availability/day:", " ".join(f"{v:.3f}" for v in daily))
    print(f"steady-state availability: {result.steady_state_availability(3):.3f}")
    print(f"steady-state replicas:     {result.steady_state_replicas(3):.2f}")
    print(f"blacklisted owners:        {result.blacklisted_owner_count}")


def main() -> None:
    base = dict(dataset="facebook", scale=0.008, n_days=12, seed=3)

    clean = run_scenario(ScenarioConfig(**base))
    describe("no attack", clean)

    slander = run_scenario(ScenarioConfig(**base, slander_fraction=0.5))
    describe("slander attack (50% of identities)", slander)

    flooding = run_scenario(
        ScenarioConfig(**base, sybil_fraction=0.5, sybil_flood_requests=25)
    )
    describe("sybil flooding (sybils = 50% of honest population)", flooding)

    drop = clean.steady_state_availability(3) - slander.steady_state_availability(3)
    print(f"\nslander cost: {drop*100:.1f} availability points "
          f"(paper: at most ~4-5 points at m=0.5)")
    print(f"flooding kept benign availability at "
          f"{flooding.steady_state_availability(3):.1%} "
          f"and blacklisted {flooding.blacklisted_owner_count} flooder entries")


if __name__ == "__main__":
    main()
