"""Large profiles with erasure coding (the Sec. 8 extension, end to end).

A power user's profile (tens of MB of photo albums and a video) would
burden every mirror with the full copy under plain replication.  With the
coding extension, the profile is split into k pieces, encoded into n
Reed-Solomon fragments, and each mirror stores only one fragment — any k
of them reconstruct the data.

Run with:  python examples/large_profiles.py
"""

from repro.coding import ReedSolomonCode
from repro.coding.fragments import availability_probability
from repro.core.config import SoupConfig
from repro.dht.bootstrap import BootstrapRegistry
from repro.dht.pastry import PastryOverlay
from repro.network.events import EventLoop
from repro.network.simnet import SimNetwork
from repro.node.middleware import SoupNode
from repro.node.profile import DataItem


def main() -> None:
    # --- the codec itself, on real bytes --------------------------------
    code = ReedSolomonCode(n=12, k=6)
    video = bytes(i % 251 for i in range(3_000_000))  # a 3 MB item
    fragments = code.encode(video)
    print(f"encoded 3 MB into {len(fragments)} fragments of "
          f"{len(fragments[0].data) / 1e6:.2f} MB each "
          f"(storage overhead {code.storage_overhead:.1f}x)")
    recovered = code.decode(fragments[3:9], len(video))  # any 6 of 12
    print(f"reconstruction from parity-heavy fragment subset: "
          f"{'OK' if recovered == video else 'FAILED'}")

    # --- the middleware path ------------------------------------------------
    loop = EventLoop()
    network = SimNetwork(loop)
    overlay = PastryOverlay()
    registry = BootstrapRegistry()
    nodes = {}

    def make(name, seed, **kwargs):
        node = SoupNode(
            name=name, network=network, overlay=overlay, registry=registry,
            peer_resolver=nodes.get, config=SoupConfig(), seed=seed,
            key_bits=512, **kwargs,
        )
        nodes[node.node_id] = node
        return node

    boot = make("boot", 1)
    boot.join()
    boot.make_bootstrap_node()
    peers = [make(f"peer{i}", 10 + i) for i in range(10)]
    for peer in peers:
        peer.join()

    # A power user with coding enabled above 5 MB.
    owner = make("power-user", 99, coding_k=4, coding_threshold_bytes=5_000_000)
    owner.join()
    for other in peers + [boot]:
        owner.contact(other.node_id)

    for _ in range(3):
        owner.post_item(DataItem.photo(400_000, created_at=loop.now))
    owner.post_item(DataItem.video(28_000_000, created_at=loop.now))
    print(f"\npower user's profile: {owner.profile.size_bytes() / 1e6:.1f} MB "
          f"in {len(owner.profile)} items")

    accepted = owner.run_selection_round()
    loop.run_until(loop.now + 120)
    plan = owner.mirror_manager.coded_plan
    print(f"replicated as ({plan.n}, {plan.k}) fragments across "
          f"{len(accepted)} mirrors")
    print(f"per-mirror burden: {plan.fragment_bytes / 1e6:.1f} MB "
          f"(vs {owner.replica_size_bytes() / 1e6:.1f} MB under full replication)")
    print(f"total stored: {plan.stored_bytes / 1e6:.1f} MB "
          f"({plan.storage_overhead:.2f}x the profile)")

    sent = network.meters[owner.node_id].total_sent()
    print(f"owner's upload for distribution: {sent / 1e6:.1f} MB")

    # Availability math: any k of n holders suffice.
    holder_p = [0.4] * plan.n
    print(f"\nwith mirrors online 40% of the time: "
          f"P(profile available) = "
          f"{availability_probability(holder_p, plan.k):.3f} "
          f"(needs only {plan.k} of {plan.n} fragment holders)")

    # Fetch while the owner is offline.
    owner.go_offline()
    reader = peers[0]
    print(f"owner offline; fetch via fragments succeeded: "
          f"{reader.request_profile(owner.node_id)}")


if __name__ == "__main__":
    main()
