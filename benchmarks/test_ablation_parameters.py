"""Ablations for the design choices DESIGN.md calls out.

The paper motivates three design decisions experimentally but publishes
only the conclusions; these ablations regenerate the evidence:

* **α = 0.75** (Sec. 4.4) — "observing only the most recent observations
  might in fact lead to unstable mirror sets"; heavy recency (low
  retention in our aged-counter estimator) should raise mirror churn.
* **β ≈ 1.25** (Sec. 4.5) — the social filter "must not be over-stretched":
  a friend must provide ≥ 80 % of a stranger's performance.  Large β
  promotes weak friends and costs availability.
* **Eq. (1) normalization** — the printed ``by_cap`` form under-estimates
  under sparse observation, inflating mirror sets; the aged-counter
  estimator keeps them small (the reproduction's documented
  interpretation; DESIGN.md §3).
"""

import numpy as np
import pytest

from benchmarks.conftest import DEFAULT_SCALE, print_table, run_once
from repro.core.config import SoupConfig
from repro.sim.engine import run_scenario
from repro.sim.scenario import ScenarioConfig

DAYS = 12


def run_with(soup: SoupConfig):
    config = ScenarioConfig(
        dataset="facebook", scale=DEFAULT_SCALE, n_days=DAYS, seed=5, soup=soup
    )
    return run_scenario(config)


def test_ablation_recency_weighting(benchmark):
    """Heavier recency (lower retention) destabilizes mirror sets."""

    def run_all():
        return {
            "retention=0.85 (default)": run_with(SoupConfig(count_retention=0.85)),
            "retention=0.30 (recent-only)": run_with(SoupConfig(count_retention=0.30)),
        }

    results = run_once(benchmark, run_all)
    rows = [
        (
            name,
            f"{np.mean(r.mirror_churn_by_round[-4:]):.2f}",
            f"{r.steady_state_availability(3):.3f}",
        )
        for name, r in results.items()
    ]
    print_table("Ablation — recency weighting", ("config", "late churn", "availability"), rows)

    default = results["retention=0.85 (default)"]
    recent_only = results["retention=0.30 (recent-only)"]
    # Over-weighting recent observations increases mirror-set churn (the
    # paper's argument for a moderate α).
    assert np.mean(recent_only.mirror_churn_by_round[-4:]) > np.mean(
        default.mirror_churn_by_round[-4:]
    )


def test_ablation_social_filter(benchmark):
    """An over-stretched social filter costs availability."""

    def run_all():
        return {
            "beta=1.25 (default)": run_with(SoupConfig(beta=1.25)),
            "beta=4.0 (over-stretched)": run_with(SoupConfig(beta=4.0)),
        }

    results = run_once(benchmark, run_all)
    rows = [
        (name, f"{r.steady_state_availability(3):.3f}", f"{r.steady_state_replicas(3):.2f}")
        for name, r in results.items()
    ]
    print_table("Ablation — social filter β", ("config", "availability", "replicas"), rows)

    default = results["beta=1.25 (default)"]
    stretched = results["beta=4.0 (over-stretched)"]
    # β=4 promotes friends with a quarter of a stranger's measured
    # availability — availability must not improve, and typically drops.
    assert (
        stretched.steady_state_availability(3)
        <= default.steady_state_availability(3) + 0.01
    )


def test_ablation_eq1_normalization(benchmark):
    """The printed Eq. (1) under sparse observation inflates mirror sets."""

    def run_all():
        return {
            "aged_counts (default)": run_with(
                SoupConfig(experience_normalization="aged_counts")
            ),
            "by_cap (printed form)": run_with(
                SoupConfig(experience_normalization="by_cap", o_max=10)
            ),
        }

    results = run_once(benchmark, run_all)
    rows = [
        (name, f"{r.steady_state_replicas(3):.2f}", f"{r.steady_state_availability(3):.3f}")
        for name, r in results.items()
    ]
    print_table(
        "Ablation — Eq. (1) normalization", ("config", "replicas", "availability"), rows
    )

    default = results["aged_counts (default)"]
    printed = results["by_cap (printed form)"]
    # Dilution by the unused cap headroom drives exp values down, so the
    # greedy loop needs many more mirrors to believe it reached ε.
    assert printed.steady_state_replicas(3) > default.steady_state_replicas(3) + 2
