"""Extension benches: tie strengths and bandwidth-aware selection (Sec. 8).

* Tie strengths: weighing experience sets by relation strength "could
  further reduce the impact of manipulated experience sets" — measured by
  re-running the slander attack with the extension on.
* Extended recommendations: reporting mirror bandwidth "could lead to a
  better quality of service" — measured as the mean uplink of selected
  mirrors at unchanged availability.
"""

import numpy as np
import pytest

from benchmarks.conftest import DEFAULT_SCALE, print_table, run_once
from repro.extensions.bandwidth import simulate_qos_benefit
from repro.sim.engine import run_scenario
from repro.sim.scenario import ScenarioConfig

DAYS = 16


def run_slander(use_ties: bool):
    config = ScenarioConfig(
        dataset="facebook",
        scale=DEFAULT_SCALE,
        n_days=DAYS,
        seed=5,
        slander_fraction=0.5,
        use_tie_strength=use_ties,
    )
    return run_scenario(config)


def test_extension_tie_strength(benchmark):
    results = run_once(
        benchmark,
        lambda: {"binary relations": run_slander(False), "tie strengths": run_slander(True)},
    )
    rows = [
        (
            name,
            f"{r.steady_state_availability(3):.3f}",
            f"{np.mean(r.availability[: 5 * 24]):.3f}",
            f"{r.steady_state_replicas(3):.2f}",
        )
        for name, r in results.items()
    ]
    print_table(
        "Sec. 8 extension — slander (m=0.5) with tie-strength weighting",
        ("relations model", "steady availability", "attack-phase avail", "replicas"),
        rows,
    )

    binary = results["binary relations"]
    ties = results["tie strengths"]
    # Weak-tied slanderers lose influence: availability with the extension
    # is at least as good, and the early attack phase recovers faster.
    assert (
        ties.steady_state_availability(3)
        >= binary.steady_state_availability(3) - 0.01
    )
    assert np.mean(ties.availability[: 5 * 24]) >= np.mean(
        binary.availability[: 5 * 24]
    ) - 0.01


def test_extension_bandwidth_qos(benchmark):
    outcomes = run_once(benchmark, lambda: simulate_qos_benefit(seed=3))
    rows = [
        (
            name,
            f"{o.mean_mirror_bandwidth_kb_s:.0f} KB/s",
            f"{o.estimated_availability:.4f}",
            f"{o.mirror_count:.1f}",
        )
        for name, o in outcomes.items()
    ]
    print_table(
        "Sec. 8 extension — bandwidth-aware selection",
        ("policy", "mean mirror bandwidth", "availability", "mirrors"),
        rows,
    )

    baseline = outcomes["baseline"]
    qos = outcomes["qos"]
    # Better QoS (faster mirrors) at essentially unchanged availability.
    assert qos.mean_mirror_bandwidth_kb_s > 1.1 * baseline.mean_mirror_bandwidth_kb_s
    assert qos.estimated_availability > baseline.estimated_availability - 0.02
