"""Sec. 4.4: the traitor attack and the aging factor.

"A malicious node could perform a traitor attack, where it obtains an
excellent reputation just to exploit it afterwards.  In particular, such a
node could offer exceptional storage capacities and online time to get
selected as a mirror by many users, just to disappear later. ... Applying
the aging factor supports quick adaption to such situations."

The experiment: 5 % extra identities with perfect availability and 10×
storage join at bootstrap, attract replicas, and vanish at day 8.  The
aging of experience values must push the traitors out of the rankings and
recover availability within days; sluggish aging (high retention) slows
the recovery.
"""

import numpy as np
import pytest

from benchmarks.conftest import DEFAULT_SCALE, print_series, print_table, run_once
from repro.core.config import SoupConfig
from repro.sim.engine import SoupSimulation
from repro.sim.scenario import ScenarioConfig
from repro.graphs.datasets import generate_dataset

BETRAYAL_DAY = 8
DAYS = 18


def run_with_retention(retention: float):
    config = ScenarioConfig(
        dataset="facebook",
        scale=DEFAULT_SCALE,
        n_days=DAYS,
        seed=5,
        traitor_fraction=0.05,
        betrayal_day=BETRAYAL_DAY,
        soup=SoupConfig(count_retention=retention),
    )
    graph = generate_dataset(config.dataset, config.scale, config.seed)
    sim = SoupSimulation(graph, config)
    result = sim.run()
    traitor_ids = {n.node_id for n in sim.nodes if n.is_traitor}
    # How many benign nodes still announce a traitor at the end.
    still_bound = sum(
        1
        for node in sim.nodes
        if not node.is_traitor and not node.is_sybil
        and any(m in traitor_ids for m in node.announced_mirrors)
    )
    replicas_on_traitors = sum(
        len(sim.replica_locations[t]) for t in traitor_ids
    )
    return result, still_bound, replicas_on_traitors


def test_traitor_recovery(benchmark):
    outcome = run_once(
        benchmark,
        lambda: {
            "retention=0.85 (default aging)": run_with_retention(0.85),
            "retention=0.98 (sluggish aging)": run_with_retention(0.98),
        },
    )

    epoch = BETRAYAL_DAY * 24
    rows = []
    for name, (result, still_bound, on_traitors) in outcome.items():
        daily = result.daily_availability()
        print_series(f"traitor ({name})", "per day", daily)
        dip = result.availability[epoch : epoch + 24].min()
        recovered = result.availability[-48:].mean()
        rows.append(
            (name, f"{dip:.3f}", f"{recovered:.3f}", still_bound, on_traitors)
        )
    print_table(
        "Sec. 4.4 — traitor attack (5 % perfect-uptime identities vanish at day 8)",
        ("aging", "dip (min)", "recovered", "nodes still bound", "replicas on traitors"),
        rows,
    )

    default_result, default_bound, _ = outcome["retention=0.85 (default aging)"]
    sluggish_result, sluggish_bound, _ = outcome["retention=0.98 (sluggish aging)"]

    before = default_result.availability[epoch - 48 : epoch].mean()
    dip = default_result.availability[epoch : epoch + 24].min()
    recovered = default_result.availability[-48:].mean()
    # The betrayal hurts (traitors had attracted real load) ...
    assert dip < before - 0.02
    # ... and default aging recovers close to the pre-attack level.
    assert recovered > before - 0.04
    # Quick adaptation: recovery beats (or at worst matches) sluggish aging.
    assert recovered >= sluggish_result.availability[-48:].mean() - 0.01
