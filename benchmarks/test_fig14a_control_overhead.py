"""Fig. 14a: control overhead at the bootstrap node.

Paper claims: "Only upon join and leave operations (i.e., shifting some
entries in the DHT) we observe utilization of the network interface at
around 20-40 KB/s.  At the same time, lookups do not have a visual impact."
"""

import numpy as np
import pytest

from benchmarks.conftest import print_series, print_table, run_once
from repro.deploy.emulation import Deployment


def run_deployment():
    deployment = Deployment(n_desktop=27, n_mobile=4, seed=7)
    report = deployment.run(duration_s=1800.0, selection_rounds=15)
    return report


def test_fig14a(benchmark):
    report = run_once(benchmark, run_deployment)
    series = np.array([kb for _, kb in report.gateway_series])

    busy_seconds = int(np.sum(series > 5.0))
    peak = float(series.max())
    print_series(
        "Fig.14a gateway DHT KB/s (busy seconds only)",
        "KB/s",
        [kb for kb in series if kb > 1.0][:40],
        "{:.1f}",
    )
    print_table(
        "Fig. 14a — DHT control overhead at the bootstrap node",
        ("peak KB/s", "busy seconds (>5KB/s)", "total seconds", "mean KB/s"),
        [(f"{peak:.1f}", busy_seconds, len(series), f"{series.mean():.2f}")],
    )

    # Join/leave spikes sit in the paper's tens-of-KB/s band.
    assert 10.0 <= peak <= 80.0
    # The link is quiet almost all the time: lookups are invisible.
    assert busy_seconds < 0.1 * len(series)
    assert np.median(series) < 1.0
