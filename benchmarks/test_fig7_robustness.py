"""Fig. 7: SOUP does not discriminate any node.

Paper claims: both the top and the bottom 10 % of users — by online time
and by number of friends — reach high availability after just one day; no
cohort is left behind.
"""

import numpy as np
import pytest

from benchmarks.conftest import (
    DEFAULT_SCALE,
    print_series,
    print_table,
    run_once,
    sweep_results,
)
from repro.runtime import SweepSpec


def run_experiment():
    """Fig. 7's single cell, executed through the sweep orchestrator."""
    spec = SweepSpec(
        name="fig7",
        base={"dataset": "facebook", "scale": DEFAULT_SCALE, "n_days": 18},
        seeds=[5],
    )
    (record,) = sweep_results(spec)
    return record.result


def daily(series, epochs_per_day=24):
    days = len(series) // epochs_per_day
    return series[: days * epochs_per_day].reshape(days, epochs_per_day).mean(axis=1)


def test_fig7(benchmark):
    result = run_once(benchmark, run_experiment)

    rows = []
    for cohort in ("top_online", "bottom_online", "top_friends", "bottom_friends"):
        series = result.cohort_availability[cohort]
        print_series(f"Fig.7 ({cohort})", "per day", daily(series))
        rows.append(
            (
                cohort,
                f"{series[result.day_index(1)]:.3f}",
                f"{series[result.day_index(3):].mean():.3f}",
            )
        )
    rows.append(
        ("average", f"{result.availability_at_day(1):.3f}",
         f"{result.availability[result.day_index(3):].mean():.3f}")
    )
    print_table("Fig. 7 — cohort availability", ("cohort", "day 1", "steady"), rows)

    steady_start = result.day_index(3)
    average = result.availability[steady_start:].mean()
    for cohort in ("bottom_online", "bottom_friends"):
        series = result.cohort_availability[cohort]
        # Day-1 availability is already high for the weakest users ...
        assert series[result.day_index(1)] > 0.9, cohort
        # ... and their steady state is within a few points of the average:
        # no discrimination by online time or social connectivity.
        assert series[steady_start:].mean() > average - 0.06, cohort
