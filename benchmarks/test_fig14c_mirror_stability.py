"""Fig. 14c: variance in the mirror set per selection round.

Paper claims: after the initial rounds, mirror sets stabilize; most changes
are the one random exploration node added each round, so the per-round
difference converges to ~1 and "the whole data of a user does not have to
be transmitted often".
"""

import numpy as np
import pytest

from benchmarks.conftest import print_series, print_table, run_once
from repro.deploy.emulation import Deployment


def run_deployment():
    deployment = Deployment(n_desktop=27, n_mobile=4, seed=7)
    return deployment.run(duration_s=1800.0, selection_rounds=15)


def test_fig14c(benchmark):
    report = run_once(benchmark, run_deployment)
    variance = report.mirror_variance_by_round

    print_series("Fig.14c mirror-set difference", "per round", variance, "{:.2f}")
    print_table(
        "Fig. 14c — mirror-set stability",
        ("first 3 rounds (mean)", "last 3 rounds (mean)"),
        [(f"{np.mean(variance[:3]):.2f}", f"{np.mean(variance[-3:]):.2f}")],
    )

    # Convergence: churn falls sharply after the initial rounds ...
    assert np.mean(variance[-3:]) < 0.5 * np.mean(variance[:3])
    # ... toward the one-random-node floor.
    assert np.mean(variance[-3:]) < 3.0
    assert np.mean(variance[-3:]) >= 0.3  # the exploration node keeps moving
