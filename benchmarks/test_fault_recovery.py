"""Fault recovery: proactive repair vs. passive round-based healing.

The reliability layer's claim: under the PR-1 fault schedules — a burst
of dropped replica transfers around a selection round plus a mid-run
crash — acknowledged transfers with per-attempt retries and
suspicion-based repair bring availability back to within 2 percentage
points of the no-fault baseline, while the repair-disabled run stays
measurably degraded until the *next* periodic selection round (2 days
away at this cadence) bails it out.

Schedule design: selection rounds run every 2 days (epochs 47, 95, 143,
191).  Transfers are dropped at 90 % across the round at epoch 143, and
30 nodes crash at epoch 150 — both between the last two rounds, so the
only thing that can heal the damage inside the measured tail window
(epochs 168–190, before the final round) is the reliability layer.
"""

import numpy as np
import pytest

from benchmarks.conftest import DEFAULT_SCALE, print_series, print_table, run_once
from repro.sim.engine import run_scenario
from repro.sim.scenario import ScenarioConfig

DAYS = 8
ROUND_PERIOD_DAYS = 2.0
FAULTS = "drop_transfer:rate=0.9:from_epoch=143:to_epoch=160;crash:epoch=150:count=30"
#: Tail window: after repair convergence, before the final (healing) round.
TAIL = slice(168, 191)


def run_arm(faults, repair):
    config = ScenarioConfig(
        dataset="facebook",
        scale=DEFAULT_SCALE,
        n_days=DAYS,
        seed=5,
        round_period_days=ROUND_PERIOD_DAYS,
        repair=repair,
        faults=faults,
    )
    return run_scenario(config)


def test_fault_recovery(benchmark):
    outcome = run_once(
        benchmark,
        lambda: {
            "no faults": run_arm(None, repair=False),
            "faults + repair": run_arm(FAULTS, repair=True),
            "faults, no repair": run_arm(FAULTS, repair=False),
        },
    )

    rows = []
    for name, result in outcome.items():
        print_series(f"fault recovery ({name})", "per day", result.daily_availability())
        tail = result.availability[TAIL].mean()
        dip = result.availability[143:168].min()
        rows.append((name, f"{dip:.3f}", f"{tail:.3f}"))
    print_table(
        "Fault recovery — dropped transfers @90% around round 143 + crash of 30 @150",
        ("arm", "dip (min)", "tail mean (ep 168-190)"),
        rows,
    )

    rel = outcome["faults + repair"].reliability
    print_table(
        "Reliability counters (repair arm)",
        ("retries", "giveups", "deaths", "revivals", "repairs",
         "replacements", "mean repair latency (ep)", "partial-set epochs"),
        [(
            rel.transfer_retries, rel.transfer_giveups, rel.deaths_declared,
            rel.revivals, rel.repairs_triggered, rel.repair_replacements,
            f"{rel.mean_repair_latency():.1f}", rel.partial_set_epochs,
        )],
    )

    baseline = outcome["no faults"].availability[TAIL].mean()
    repaired = outcome["faults + repair"].availability[TAIL].mean()
    unrepaired = outcome["faults, no repair"].availability[TAIL].mean()

    # Proactive repair recovers to within 2 pp of the no-fault baseline ...
    assert repaired >= baseline - 0.02
    # ... the passive run measurably does not (it waits for the next round) ...
    assert unrepaired < baseline - 0.02
    # ... so repair strictly beats passive healing inside the window.
    assert repaired > unrepaired

    # The machinery actually ran: retries rescued dropped transfers, the
    # detector declared deaths, repair replaced mirrors — and did so well
    # inside the 48-epoch inter-round gap it is designed to undercut.
    assert rel.transfer_retries > 0
    assert rel.deaths_declared > 0
    assert rel.repairs_triggered > 0
    assert rel.repair_replacements > 0
    assert rel.mean_repair_latency() < ROUND_PERIOD_DAYS * 24

    # The no-repair arm collects no reliability metrics at all.
    assert outcome["faults, no repair"].reliability is None
