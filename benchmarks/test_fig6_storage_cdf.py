"""Fig. 6: CDF of profiles stored per node (stability over time).

Paper claims: after day one around half the nodes store ~10 or more
replicas; once experiences are measured (two weeks), 90 % of users store
no more than ~7; the one-month distribution matches the two-week one (the
system is stable).  Sec. 5.2.2 adds: the drop rate converges downward and
the upper half of nodes by online time provides >90 % of all replicas.
"""

import numpy as np
import pytest

from benchmarks.conftest import DEFAULT_SCALE, print_series, print_table, run_once
from repro.sim.engine import run_scenario
from repro.sim.metrics import cdf_points, percentile_of
from repro.sim.scenario import ScenarioConfig


def run_experiment():
    config = ScenarioConfig(
        dataset="facebook",
        scale=DEFAULT_SCALE,
        n_days=30,
        seed=5,
        cdf_snapshot_days=(1, 14, 30),
    )
    return run_scenario(config)


def test_fig6(benchmark):
    result = run_once(benchmark, run_experiment)

    rows = []
    for day, counts in sorted(result.stored_profiles_snapshots.items()):
        p50 = percentile_of(counts, 0.5)
        p90 = percentile_of(counts, 0.9)
        rows.append((f"day {day}", f"{np.mean(counts):.2f}", p50, p90, max(counts)))
    print_table(
        "Fig. 6 — profiles stored per node",
        ("snapshot", "mean", "median", "p90", "max"),
        rows,
    )
    print_series(
        "Fig. 6 drop rate", "per round", result.drop_rate_by_round, "{:.4f}"
    )
    print(f"Top-half online-time nodes hold {result.top_half_replica_share:.1%} of replicas")

    day1 = result.stored_profiles_snapshots[1]
    day14 = result.stored_profiles_snapshots[14]
    day30 = result.stored_profiles_snapshots[30]

    # Most users store few replicas once stable (paper: p90 = 7; at laptop
    # scale our storage skew is a little flatter — see EXPERIMENTS.md).
    assert percentile_of(day14, 0.5) <= 7
    assert percentile_of(day14, 0.9) <= 25
    # Stability: the two-week and one-month distributions agree.
    assert percentile_of(day30, 0.9) == pytest.approx(percentile_of(day14, 0.9), abs=3)
    assert np.mean(day30) == pytest.approx(np.mean(day14), rel=0.2)

    # Storage is heavily skewed toward well-provisioned nodes: the upper
    # half by online time provides the overwhelming majority of replicas.
    assert result.top_half_replica_share > 0.7

    # Drop rate converges to a low value (paper: 0.07 % -> 0.045 % on a
    # 90k-node population; our per-placement accounting at 1 % scale sits
    # higher in absolute terms but stays below 10 % and does not grow).
    late_drop = np.mean(result.drop_rate_by_round[-5:])
    early_drop = np.mean(result.drop_rate_by_round[2:7])
    assert late_drop < 0.10
    assert late_drop < early_drop + 0.05
