"""Table 1: DOSN approaches summarized (feature matrix).

Regenerates the qualitative comparison: every competitor lacks multiple
features, SOUP provides all of them.
"""

from benchmarks.conftest import print_table, run_once
from repro.baselines.features import FEATURES, SYSTEMS, missing_feature_count, table1_rows


def test_table1(benchmark):
    rows = run_once(benchmark, table1_rows)
    print_table(
        "Table 1 — DOSN Approaches Summarized",
        ("system",) + FEATURES,
        rows,
    )

    # SOUP supports every feature; each competitor misses at least two.
    soup_row = [row for row in rows if row[0] == "SOUP"][0]
    assert all(cell == "+" for cell in soup_row[1:])
    for system in SYSTEMS:
        if system != "SOUP":
            assert missing_feature_count(system) >= 2
