"""Table 3: the evaluation datasets (nodes / edges / average degree).

Prints both the full-scale spec (the paper's table) and the measured shape
of the graphs the experiments actually run on at the default scale.
"""

import pytest

from benchmarks.conftest import DEFAULT_SCALE, print_table, run_once
from repro.graphs.datasets import DATASET_SPECS, table3_rows
from repro.graphs.stats import graph_stats
from repro.graphs.datasets import generate_dataset


def test_table3(benchmark):
    rows = run_once(benchmark, lambda: table3_rows(scale=1.0))
    print_table(
        "Table 3 — Datasets for SOUP Evaluation (full scale)",
        ("dataset", "nodes", "edges", "avg degree"),
        rows,
    )
    by_name = {row[0]: row for row in rows}
    assert by_name["facebook"] == ("facebook", 90_269, 3_646_662, 40.40)
    assert by_name["epinions"] == ("epinions", 75_879, 508_837, 6.71)
    assert by_name["slashdot"] == ("slashdot", 82_169, 948_464, 11.54)

    measured = table3_rows(scale=DEFAULT_SCALE, seed=0)
    print_table(
        f"Table 3 — generated graphs at scale={DEFAULT_SCALE}",
        ("dataset", "nodes", "edges(directed)", "avg degree"),
        measured,
    )
    # The scaled graphs preserve each dataset's average degree.
    for name, _, _, degree in measured:
        assert degree == pytest.approx(DATASET_SPECS[name].average_degree, rel=0.1)

    # And the degree heterogeneity the mirror selection exploits.
    for name in DATASET_SPECS:
        stats = graph_stats(generate_dataset(name, scale=DEFAULT_SCALE, seed=0))
        assert stats.degree_gini > 0.25, name
