"""Fig. 11: SOUP can recover from a flooding attack.

Paper claims: an adversary running sybil identities (up to as many as half
the regular population, m = 0.5) floods benign nodes with storage requests.
Protective dropping blacklists the flooders (announced-vs-real mirror-set
mismatches), keeping benign availability at/above ~90 % in the long run and
the replica overhead bounded (≤ ~13-20), and prevents the sybils from
filling benign storage.
"""

import numpy as np
import pytest

from benchmarks.conftest import DEFAULT_SCALE, print_series, print_table, run_once
from repro.sim.engine import SoupSimulation
from repro.sim.scenario import ScenarioConfig
from repro.graphs.datasets import generate_dataset

DAYS = 20
FRACTIONS = (0.1, 0.2, 0.5)


def run_fraction(fraction: float):
    config = ScenarioConfig(
        dataset="facebook",
        scale=DEFAULT_SCALE,
        n_days=DAYS,
        seed=5,
        sybil_fraction=fraction,
        sybil_flood_requests=25,
    )
    graph = generate_dataset(config.dataset, config.scale, config.seed)
    sim = SoupSimulation(graph, config)
    result = sim.run()
    # How much benign storage the sybils hold at the end (flooding damage).
    sybil_ids = {n.node_id for n in sim.nodes if n.is_sybil}
    sybil_replicas = sum(
        1
        for mirror, owners in sim.replica_locations.items()
        if mirror not in sybil_ids
        for owner in owners
        if owner in sybil_ids
    )
    benign_storage_used = sum(
        sim.nodes[i].store.used_profiles for i in range(sim.n_base)
    )
    benign_capacity = sum(
        sim.nodes[i].store.capacity_profiles for i in range(sim.n_base)
    )
    return {
        "result": result,
        "sybil_replicas": sybil_replicas,
        "n_sybils": sim.n_sybils,
        "storage_utilization": benign_storage_used / benign_capacity,
    }


def test_fig11(benchmark):
    outcomes = run_once(benchmark, lambda: {m: run_fraction(m) for m in FRACTIONS})

    rows = []
    for fraction, outcome in outcomes.items():
        result = outcome["result"]
        label = f"m={fraction:.1f}"
        print_series(f"Fig.11 availability ({label})", "per day", result.daily_availability())
        rows.append(
            (
                label,
                f"{result.steady_state_availability(skip_days=5):.3f}",
                f"{result.steady_state_replicas(skip_days=5):.2f}",
                result.blacklisted_owner_count,
                f"{outcome['sybil_replicas'] / max(1, outcome['n_sybils']):.1f}",
                f"{outcome['storage_utilization']:.2f}",
            )
        )
    print_table(
        "Fig. 11 — sybil flooding attack",
        (
            "sybils",
            "benign avail",
            "benign replicas",
            "blacklist entries",
            "replicas/sybil",
            "benign storage used",
        ),
        rows,
    )

    for fraction, outcome in outcomes.items():
        result = outcome["result"]
        # Benign availability holds at/above ~90 % in the long run.
        assert result.steady_state_availability(skip_days=5) > 0.88, fraction
        # Replica overhead stays bounded (paper: does not exceed ~13-20).
        assert result.steady_state_replicas(skip_days=5) < 20, fraction
        # Protective dropping engages: flooders get blacklisted ...
        assert result.blacklisted_owner_count > 0, fraction
        # ... and benign storage is not exhausted by the attack.
        assert outcome["storage_utilization"] < 0.9, fraction

    # A sybil's steady-state holdings are bounded by the three-strike
    # blacklisting latency (~3 rounds of flooding), not an unbounded
    # accumulation across the whole run.
    heavy = outcomes[0.5]
    per_sybil = heavy["sybil_replicas"] / max(1, heavy["n_sybils"])
    assert per_sybil < 4 * 25  # 25 = flood requests per round
