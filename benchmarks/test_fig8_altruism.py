"""Fig. 8: SOUP can exploit altruistic resources.

Paper claims: when a small fraction (a = 1/2/5 %) of always-online
altruistic nodes joins mid-run, availability rises slightly and stabilizes,
and — more prominently — the replica overhead falls, because nodes need
fewer mirrors once the reliable altruists are discovered.
"""

import numpy as np
import pytest

from benchmarks.conftest import (
    DEFAULT_SCALE,
    print_series,
    print_table,
    run_once,
    sweep_results,
)
from repro.runtime import SweepSpec

JOIN_DAY = 10
DAYS = 26
FRACTIONS = (0.0, 0.01, 0.02, 0.05)


def run_fractions():
    """The Fig. 8 altruist-fraction grid, orchestrated as one sweep."""
    spec = SweepSpec(
        name="fig8",
        base={
            "dataset": "facebook",
            "scale": DEFAULT_SCALE,
            "n_days": DAYS,
            "altruist_join_day": JOIN_DAY,
        },
        grid={"altruist_fraction": list(FRACTIONS)},
        seeds=[5],
    )
    return {
        record.overrides["altruist_fraction"]: record.result
        for record in sweep_results(spec)
    }


def test_fig8(benchmark):
    results = run_once(benchmark, run_fractions)

    rows = []
    for fraction, result in results.items():
        label = f"a={fraction:.2f}"
        print_series(f"Fig.8 availability ({label})", "per day", result.daily_availability())
        print_series(
            f"Fig.8 replicas     ({label})", "per day", result.daily_replica_overhead(), "{:.2f}"
        )
        before = result.daily_replica_overhead()[JOIN_DAY - 4 : JOIN_DAY].mean()
        after = result.daily_replica_overhead()[-4:].mean()
        rows.append(
            (
                label,
                f"{result.availability[result.day_index(JOIN_DAY):].mean():.3f}",
                f"{before:.2f}",
                f"{after:.2f}",
            )
        )
    print_table(
        "Fig. 8 — altruistic nodes join at day 10",
        ("fraction", "avail after join", "replicas before", "replicas end"),
        rows,
    )

    baseline = results[0.0]
    generous = results[0.05]
    steady = lambda r: r.availability[r.day_index(JOIN_DAY + 3):].mean()

    # Availability with 5 % altruists at least matches the baseline ...
    assert steady(generous) >= steady(baseline) - 0.005
    # ... and the replica overhead visibly drops as altruists absorb load
    # (the paper's "more prominent" effect).
    baseline_end = baseline.daily_replica_overhead()[-4:].mean()
    generous_end = generous.daily_replica_overhead()[-4:].mean()
    assert generous_end < baseline_end - 0.3

    # The effect is monotone-ish in the altruist fraction.
    end_overheads = [results[a].daily_replica_overhead()[-4:].mean() for a in FRACTIONS]
    assert end_overheads[-1] == min(end_overheads)
