"""Shared helpers for the reproduction benchmarks.

Every module in this directory regenerates one table or figure of the
paper's evaluation.  The ``benchmark`` fixture times the full experiment
(one round — these are simulations, not microbenchmarks); the printed
output is the table/series the paper reports; the assertions encode the
paper's *shape* claims (who wins, by roughly what factor, where crossovers
fall), not its absolute testbed numbers.

Default experiment scale is chosen so the whole directory regenerates on a
laptop in minutes.  Set ``REPRO_SCALE`` (e.g. ``REPRO_SCALE=0.1``) to run
closer to the paper's full dataset sizes.
"""

import os
from typing import Iterable, Sequence

#: Fraction of the full dataset size experiments run at by default.
DEFAULT_SCALE = float(os.environ.get("REPRO_SCALE", "0.01"))


def print_table(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> None:
    """Render one experiment's output table to stdout."""
    rows = [tuple(str(cell) for cell in row) for row in rows]
    headers = [str(h) for h in headers]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    print()
    print(f"=== {title} ===")
    print("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    print("  ".join("-" * w for w in widths))
    for row in rows:
        print("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))


def print_series(title: str, label: str, values: Sequence[float], fmt: str = "{:.3f}") -> None:
    """Render a one-line numeric series (a figure's curve)."""
    print(f"{title} [{label}]: " + " ".join(fmt.format(v) for v in values))


def run_once(benchmark, fn):
    """Time ``fn`` with a single round (simulations are not microbenchmarks)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


def sweep_results(spec, jobs=1):
    """Run a SweepSpec through the orchestrator and return its TaskRecords.

    The figure benchmarks drive their seed/fraction/dataset grids through
    ``repro.runtime`` (rather than bare ``run_scenario`` loops), so the
    timed path is the one ``soup sweep`` users run.  The run directory is
    temporary; artifacts are loaded back before it is deleted.
    """
    import tempfile

    from repro.runtime import load_records, run_sweep

    with tempfile.TemporaryDirectory(prefix="soup-sweep-") as tmp:
        outcome = run_sweep(spec, tmp, jobs=jobs)
        if outcome.failed:
            raise RuntimeError(f"sweep tasks failed: {outcome.failed}")
        records = load_records(tmp)
        for record in records:
            record.result  # materialize before the directory vanishes
        return records
