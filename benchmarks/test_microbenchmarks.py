"""Microbenchmarks of the hot protocol operations.

Not a paper experiment — these track the cost of the operations every node
runs continuously (Algorithm 1, Eq. (1) ingestion, DHT routing, ABE
encryption), so performance regressions in the core surface here.
"""

import random

import pytest

from repro.core.config import SoupConfig
from repro.core.experience import ExperienceReport
from repro.core.knowledge import KnowledgeBase
from repro.core.ranking import RegularRanker
from repro.core.selection import select_mirrors
from repro.crypto import abe
from repro.crypto.abe import AbeAuthority
from repro.crypto.access import and_of, attr, or_of
from repro.dht.pastry import PastryOverlay

CONFIG = SoupConfig()


def test_algorithm1_selection_speed(benchmark):
    rng = random.Random(0)
    ranking = [(i, rng.random()) for i in range(500)]
    friends = list(range(0, 100, 5))
    pool = list(range(500, 600))

    result = benchmark(
        lambda: select_mirrors(
            ranking, friends, CONFIG, random.Random(1), exploration_pool=pool
        )
    )
    assert result.mirrors


def test_eq1_ingestion_speed(benchmark):
    kb = KnowledgeBase(owner=0)
    ranker = RegularRanker(kb, CONFIG)
    rng = random.Random(0)
    reports = [
        ExperienceReport(
            reporter=rng.randrange(100),
            mirror=rng.randrange(50),
            observations=rng.randint(1, 3),
            availability=rng.random(),
        )
        for _ in range(300)
    ]
    benchmark(lambda: ranker.ingest_reports(reports))
    assert len(kb) > 0


def test_dht_routing_speed(benchmark):
    rng = random.Random(0)
    overlay = PastryOverlay()
    ids = []
    for i in range(300):
        node_id = rng.getrandbits(64)
        overlay.join(node_id, bootstrap_id=ids[0] if ids else None)
        ids.append(node_id)

    def route_batch():
        for _ in range(50):
            overlay.route(rng.choice(ids), rng.getrandbits(64))

    benchmark(route_batch)


def test_abe_encrypt_decrypt_speed(benchmark):
    """The paper measures ~262 ms encryption at four attributes on 2014
    hardware; this tracks our simulation-grade substitute."""
    authority = AbeAuthority(master_secret=b"b" * 32)
    policy = and_of(attr("a"), or_of(attr("b"), attr("c")), attr("d"))
    key = authority.issue_key(["a", "b", "d"])
    payload = b"x" * 10_000

    def roundtrip():
        ciphertext = authority.encrypt(payload, policy)
        return abe.decrypt(ciphertext, key)

    assert benchmark(roundtrip) == payload
