"""Guard: disabled observability hooks cost <5 % of the hot paths they wrap.

The instrumentation contract (docs/OBSERVABILITY.md) is that tracing,
metrics and profiling are near-zero-cost when off: a disabled trace emit is
one attribute check, a disabled profiler span is a shared no-op object, and
a histogram observation is a dict hit plus arithmetic.  This module measures
those per-call costs against the cheapest real operation they instrument
(one mirror selection), so a regression that makes the hooks expensive
fails here before it shows up as slower simulations.
"""

import random
import time

from repro.core.config import SoupConfig
from repro.core.selection import select_mirrors
from repro.obs import MetricsRegistry, Tracer
from repro.obs.profiling import PROFILER, Profiler, _NULL_SPAN

#: Calls-per-selection budget: the engine's selection path runs at most
#: this many hook calls (tracer guards, counter incs, histogram observes,
#: phase-timer spans — ``engine.scoring``/``engine.selection`` wrap each
#: placement, ``engine.sync``/``engine.dropping`` amortize over the round)
#: per ``select_mirrors`` invocation.
_HOOKS_PER_SELECTION = 16


def _per_call_s(fn, iterations: int = 50_000) -> float:
    fn()  # warm any lazy allocation out of the measured loop
    start = time.perf_counter()
    for _ in range(iterations):
        fn()
    return (time.perf_counter() - start) / iterations


def _selection_cost_s(rounds: int = 200) -> float:
    config = SoupConfig()
    rng = random.Random(3)
    ranking = [(node, rng.random()) for node in range(250)]
    friends = list(range(0, 40))
    start = time.perf_counter()
    for _ in range(rounds):
        select_mirrors(
            ranking=ranking,
            friends=friends,
            config=config,
            rng=rng,
            exploration_pool=range(250, 280),
        )
    return (time.perf_counter() - start) / rounds


def test_disabled_hooks_under_five_percent_of_selection():
    tracer = Tracer()  # disabled
    profiler = Profiler()  # disabled
    registry = MetricsRegistry()
    histogram = registry.histogram("bench.hist")
    counter = registry.counter("bench.counter")

    def disabled_trace_guard():
        if tracer.enabled:
            tracer.emit("retry", kind="bench")

    def disabled_span():
        with profiler.span("bench"):
            pass

    hook_cost = max(
        _per_call_s(disabled_trace_guard),
        _per_call_s(disabled_span),
        _per_call_s(lambda: counter.inc()),
        _per_call_s(lambda: histogram.observe(3.0)),
    )
    selection_cost = _selection_cost_s()
    estimated_overhead = _HOOKS_PER_SELECTION * hook_cost / selection_cost
    print(
        f"\nhook={hook_cost * 1e9:.0f}ns selection={selection_cost * 1e6:.0f}µs "
        f"estimated overhead={estimated_overhead:.3%}"
    )
    assert estimated_overhead < 0.05, (
        f"disabled observability hooks cost {estimated_overhead:.1%} of one "
        f"selection ({hook_cost * 1e9:.0f}ns x {_HOOKS_PER_SELECTION} calls)"
    )


def test_disabled_live_observer_under_five_percent_of_message_cost():
    """The live transport's observability hooks, when no plane is
    attached, are three ``is None`` attribute checks per message (send,
    transmit, dispatch).  Guard: that costs <5 % of the cheapest
    unavoidable per-message work — pickling a ~2 KB wire frame."""
    import pickle

    from repro.deploy.live.transport import LiveTransport

    # The attribute-lookup cost is a property of the class layout; build
    # an instance without the event-loop plumbing the real ctor needs.
    transport = LiveTransport.__new__(LiveTransport)
    transport.observer = None

    def disabled_guards():
        if transport.observer is not None:  # send()
            raise AssertionError
        if transport.observer is not None:  # _transmit()
            raise AssertionError
        if transport.observer is not None:  # _dispatch()
            raise AssertionError

    def noop():
        pass

    frame = (123456789, 2048, ("Envelope", 42, b"x" * 2048))
    wire = pickle.dumps(frame)

    def message_lifecycle():
        # The unavoidable per-message floor the guards amortize against:
        # the sender pickles the frame, the receiver unpickles it.
        pickle.loads(pickle.dumps(frame))

    # Net guard cost: the checks themselves, minus the call overhead the
    # measuring harness adds (inline in the real transport).
    guard_cost = max(0.0, _per_call_s(disabled_guards) - _per_call_s(noop))
    message_cost = _per_call_s(message_lifecycle, iterations=20_000)
    overhead = guard_cost / message_cost
    print(
        f"\nguards={guard_cost * 1e9:.0f}ns "
        f"pickle+unpickle({len(wire)}B)={message_cost * 1e9:.0f}ns "
        f"overhead={overhead:.3%}"
    )
    assert overhead < 0.05, (
        f"disabled live-observer guards cost {overhead:.1%} of one message's "
        f"serialize/deserialize ({guard_cost * 1e9:.0f}ns vs "
        f"{message_cost * 1e9:.0f}ns)"
    )


def test_disabled_span_is_allocation_free():
    profiler = Profiler()
    assert profiler.span("a") is profiler.span("b") is _NULL_SPAN


def test_disabled_tracer_emit_is_noop():
    tracer = Tracer()
    cost = _per_call_s(lambda: tracer.emit("retry", kind="bench"))
    assert cost < 2e-6, f"disabled emit costs {cost * 1e9:.0f}ns per call"


def test_profile_run_produces_phase_breakdown():
    from repro.sim.engine import run_scenario
    from repro.sim.scenario import ScenarioConfig

    PROFILER.reset()
    PROFILER.enable()
    try:
        run_scenario(ScenarioConfig(scale=0.004, n_days=1, seed=5))
    finally:
        PROFILER.disable()
    totals = PROFILER.totals()
    for phase in ("engine.epoch", "engine.selection_round", "engine.measure"):
        assert phase in totals, f"phase {phase} never recorded"
        assert totals[phase] > 0.0
    lines = PROFILER.report_lines(top_level="engine.epoch")
    print()
    for line in lines:
        print(line)
    assert any("engine.epoch" in line and "100.0%" in line for line in lines)
    PROFILER.reset()


def test_enabled_phase_timers_under_fifteen_percent_on_epoch_loop():
    """The enabled-path budget (docs/OBSERVABILITY.md): running the
    epoch-loop bench case with phase timers capturing costs <15 % over a
    plain run.  Best-of-3 each way so one scheduler hiccup cannot flip
    the verdict."""
    from repro.graphs.datasets import generate_dataset
    from repro.obs.perf import capture_phases
    from repro.sim.engine import SoupSimulation
    from repro.sim.scenario import ScenarioConfig

    config = ScenarioConfig(scale=0.005, n_days=2, seed=5)
    graph = generate_dataset(
        config.dataset, scale=config.scale, seed=config.seed
    )

    def run_plain() -> float:
        start = time.perf_counter()
        SoupSimulation(graph, config).run()
        return time.perf_counter() - start

    def run_profiled() -> float:
        with capture_phases() as report:
            start = time.perf_counter()
            SoupSimulation(graph, config).run()
            elapsed = time.perf_counter() - start
        assert report.phases, "profiled run captured no phases"
        return elapsed

    run_plain()  # warm caches/allocators out of the measurement
    plain = min(run_plain() for _ in range(3))
    profiled = min(run_profiled() for _ in range(3))
    overhead = profiled / plain - 1.0
    print(
        f"\nplain={plain:.3f}s profiled={profiled:.3f}s "
        f"overhead={overhead:+.1%}"
    )
    assert overhead < 0.15, (
        f"enabled phase timers cost {overhead:.1%} on the epoch-loop bench "
        f"case (budget: 15%)"
    )
