"""Fig. 5: SOUP achieves high availability with low overhead.

Paper claims: in all three datasets SOUP exceeds the 99 % availability
target after only one day with no prior knowledge; as rankings refine, the
replica overhead drops substantially from its bootstrap peak and each node
ends up storing well under ten replicas on average.
"""

import pytest

from benchmarks.conftest import (
    DEFAULT_SCALE,
    print_series,
    print_table,
    run_once,
    sweep_results,
)
from repro.runtime import SweepSpec

DAYS = 20
DATASETS = ("facebook", "slashdot", "epinions")


def run_datasets():
    """The Fig. 5 dataset grid, orchestrated as one sweep."""
    spec = SweepSpec(
        name="fig5",
        base={"scale": DEFAULT_SCALE, "n_days": DAYS},
        grid={"dataset": list(DATASETS)},
        seeds=[5],
    )
    return {
        record.overrides["dataset"]: record.result
        for record in sweep_results(spec)
    }


def test_fig5(benchmark):
    results = run_once(benchmark, run_datasets)

    rows = []
    for name, result in results.items():
        print_series(f"Fig.5 availability ({name})", "per day", result.daily_availability())
        print_series(
            f"Fig.5 replicas     ({name})", "per day", result.daily_replica_overhead(), "{:.2f}"
        )
        rows.append(
            (
                name,
                f"{result.availability_at_day(1):.3f}",
                f"{result.steady_state_availability(skip_days=3):.3f}",
                f"{result.replica_overhead.max():.2f}",
                f"{result.steady_state_replicas(skip_days=10):.2f}",
            )
        )
    print_table(
        "Fig. 5 — availability & replica overhead",
        ("dataset", "avail@day1", "avail steady", "replicas peak", "replicas steady"),
        rows,
    )

    # Denser graphs give the experience machinery more reporting friends,
    # so the laptop-scale floors are dataset-dependent (EXPERIMENTS.md
    # records measured-vs-paper: the paper reports >99 % for all three).
    steady_floor = {"facebook": 0.95, "slashdot": 0.91, "epinions": 0.86}
    for name, result in results.items():
        # High availability from day one (paper: >99 % after one day) ...
        assert result.availability_at_day(1) > 0.95, name
        # ... maintained for the whole run.
        assert result.steady_state_availability(skip_days=3) > steady_floor[name], name
        # Replica overhead is single-digit on average ...
        steady = result.steady_state_replicas(skip_days=10)
        assert steady < 10, name
        # ... and the equilibrium needs no more replicas than the bootstrap
        # transient (the paper's overhead *reduction* as rankings refine).
        assert steady <= result.replica_overhead.max() + 0.5, name
