"""Fig. 14b: the most bandwidth-intense user period.

Paper claims: messaging and simple profile requests are hardly
distinguishable from an idle link; distributing the profile to mirrors and
publishing a photo album dominate (the link is most utilized at album
creation, spiking to several hundred KB/s); browsing a photo album spreads
its load over time.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_table, run_once
from repro.deploy.emulation import Deployment


def run_deployment():
    deployment = Deployment(n_desktop=27, n_mobile=4, seed=11)
    return deployment.run(duration_s=1800.0, selection_rounds=15)


def test_fig14b(benchmark):
    report = run_once(benchmark, run_deployment)
    series = np.array([kb for _, kb in report.busiest_user_series])

    idle_fraction = float(np.mean(series < 5.0))
    print_table(
        f"Fig. 14b — busiest user ({report.busiest_user}) traffic",
        ("peak KB/s", "mean KB/s", "idle seconds", "total seconds"),
        [
            (
                f"{series.max():.0f}",
                f"{series.mean():.1f}",
                int(np.sum(series < 5.0)),
                len(series),
            )
        ],
    )

    # Publication events spike into the hundreds of KB/s ...
    assert series.max() > 200.0
    # ... but the link is idle-quiet most of the time (messaging ≈ idle).
    assert idle_fraction > 0.6
    # Peaks are bounded by the (full-duplex) access link — 750 KB/s up +
    # 1000 KB/s down — not instantaneous bursts.
    assert series.max() <= 1760.0
