"""Fig. 15: bandwidth consumption at high request rates.

Paper claims: a single mirror hosting 20 real profiles (206 MB, 2035
items) serves 1/10/20 requests per second with average consumption well
below 600 KB/s; higher rates hit the rare large items more often, causing
spikes; an overloaded mirror may time requests out.
"""

import pytest

from benchmarks.conftest import print_table, run_once
from repro.deploy.traffic import MirrorLoadModel


def test_fig15(benchmark):
    model = MirrorLoadModel(seed=7)
    results = run_once(benchmark, lambda: model.sweep(rates=(1.0, 10.0, 20.0), duration_s=300))

    rows = [
        (
            f"{r.request_rate:.0f} req/s",
            f"{r.mean_kb_per_s:.0f}",
            f"{r.peak_kb_per_s:.0f}",
            r.requests_served,
            r.requests_timed_out,
        )
        for r in results
    ]
    print_table(
        "Fig. 15 — mirror serving 20 profiles (206 MB)",
        ("rate", "mean KB/s", "peak KB/s", "served", "timed out"),
        rows,
    )

    one, ten, twenty = results
    # Average consumption stays well below 600 KB/s even at 20 req/s.
    assert twenty.mean_kb_per_s < 600
    # Bandwidth grows with the request rate.
    assert one.mean_kb_per_s < ten.mean_kb_per_s <= twenty.mean_kb_per_s * 1.05
    # Spikes appear as large items are hit (peak well above the mean).
    assert twenty.peak_kb_per_s > 1.3 * twenty.mean_kb_per_s
    # Light load serves everything without timeouts.
    assert one.requests_timed_out == 0
