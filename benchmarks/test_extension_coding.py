"""Extension bench: erasure-coded large profiles (Sec. 8).

Quantifies the paper's two claimed benefits of (n, k) coding versus full
replication for large profiles: (i) no single node is burdened with the
whole profile, and (ii) availability per stored byte improves — only k
fragments need to be online.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_table, run_once
from repro.behavior.online import sample_online_probabilities
from repro.coding.fragments import (
    availability_probability,
    equivalent_full_replication,
)
from repro.coding.reed_solomon import ReedSolomonCode

PROFILE_MB = 60.0  # the Sec. 7 power-user profile


def run_comparison():
    rng = np.random.default_rng(3)
    # Holders drawn from the strong half of the population (what selection
    # actually picks as mirrors).
    population = sample_online_probabilities(4000, rng)
    strong = np.sort(population)[-400:]

    rows = []
    outcomes = {}
    for n, k in ((6, 1), (12, 6), (12, 5), (16, 8), (20, 10)):
        holders = rng.choice(strong, size=n, replace=False)
        availability = availability_probability(list(holders), k)
        storage = PROFILE_MB * n / k
        per_node = PROFILE_MB / k
        outcomes[(n, k)] = (availability, storage, per_node)
        label = "full replication (R=6)" if k == 1 else f"RS({n},{k})"
        rows.append(
            (
                label,
                f"{availability:.4f}",
                f"{storage:.0f} MB",
                f"{per_node:.0f} MB",
            )
        )

    # Throughput sanity of the actual codec on a 2 MB payload.
    code = ReedSolomonCode(12, 6)
    payload = bytes(range(256)) * 8192  # 2 MiB
    fragments = code.encode(payload)
    decoded = code.decode(fragments[3:9], len(payload))
    assert decoded == payload
    return rows, outcomes


def test_extension_coding(benchmark):
    rows, outcomes = run_once(benchmark, run_comparison)
    print_table(
        f"Sec. 8 extension — {PROFILE_MB:.0f} MB profile: replication vs coding",
        ("scheme", "availability", "total stored", "per-node burden"),
        rows,
    )

    full_availability, full_storage, full_burden = outcomes[(6, 1)]
    coded_availability_, coded_storage, coded_burden = outcomes[(12, 6)]

    # (i) Per-node burden drops by k×.
    assert coded_burden == pytest.approx(full_burden / 6)
    # (ii) Comparable availability at roughly half the stored bytes.
    assert coded_storage < full_storage * 0.6
    assert coded_availability_ > 0.95
    # More parity (lower k at same n) buys availability with storage.
    assert outcomes[(12, 5)][0] > outcomes[(12, 6)][0]
