"""Fig. 9: SOUP is resilient against node dynamics.

Paper claims: when the top 1/2/5 % of nodes by online time leave at once,
availability dips noticeably for d = 5 % (the lost nodes hosted many
replicas) but the remaining nodes choose new mirrors and performance
recovers without extra replica overhead; the system is essentially
independent of the top 1-2 %.
"""

import numpy as np
import pytest

from benchmarks.conftest import DEFAULT_SCALE, print_series, print_table, run_once
from repro.sim.engine import run_scenario
from repro.sim.scenario import ScenarioConfig

DEPARTURE_DAY = 10
DAYS = 26
FRACTIONS = (0.01, 0.02, 0.05)


def run_fraction(fraction: float):
    config = ScenarioConfig(
        dataset="facebook",
        scale=DEFAULT_SCALE,
        n_days=DAYS,
        seed=5,
        departure_fraction=fraction,
        departure_day=DEPARTURE_DAY,
    )
    return run_scenario(config)


def test_fig9(benchmark):
    results = run_once(benchmark, lambda: {d: run_fraction(d) for d in FRACTIONS})

    rows = []
    for fraction, result in results.items():
        label = f"d={fraction:.2f}"
        print_series(f"Fig.9 availability ({label})", "per day", result.daily_availability())
        epoch = DEPARTURE_DAY * 24
        before = result.availability[epoch - 48 : epoch].mean()
        dip = result.availability[epoch : epoch + 24].min()
        recovered = result.availability[-48:].mean()
        rows.append((label, f"{before:.3f}", f"{dip:.3f}", f"{recovered:.3f}"))
    print_table(
        "Fig. 9 — top-online nodes depart at day 10",
        ("fraction", "before", "dip (min)", "recovered"),
        rows,
    )

    epoch = DEPARTURE_DAY * 24
    for fraction, result in results.items():
        before = result.availability[epoch - 48 : epoch].mean()
        recovered = result.availability[-48:].mean()
        # Recovery: the end state returns to (near) the pre-departure level.
        assert recovered > before - 0.04, fraction

    # The d=5 % departure causes a visible dip; losing only the top 1 %
    # barely registers ("SOUP is independent from the top 1-2 % of nodes").
    dip = lambda r: r.availability[epoch - 48 : epoch].mean() - r.availability[
        epoch : epoch + 24
    ].min()
    assert dip(results[0.05]) > dip(results[0.01])
    assert dip(results[0.01]) < 0.12
