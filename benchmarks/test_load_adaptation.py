"""Sec. 5.2.5: adaptation to overloaded mirrors of popular data.

"A specific profile might be unavailable ... when mirrors of popular data
deny service due to overloading.  In such a case, these mirrors will
receive a lower ranking, and SOUP will distribute the load among
additional mirrors."  Unlike the static mirror choices of related work,
SOUP adapts to both increasing and decreasing resources.

The experiment: the same scenario with and without a tight per-mirror
service capacity.  Overloaded mirrors deny requests, which requesters
observe as failures; the rankings adapt by recruiting more/less-loaded
mirrors, keeping availability close to the uncapped baseline at the cost
of a somewhat larger replica overhead.
"""

import numpy as np
import pytest

from benchmarks.conftest import DEFAULT_SCALE, print_table, run_once
from repro.sim.engine import run_scenario
from repro.sim.scenario import ScenarioConfig

DAYS = 14


def run_with_capacity(capacity):
    config = ScenarioConfig(
        dataset="facebook",
        scale=DEFAULT_SCALE,
        n_days=DAYS,
        seed=5,
        mirror_request_capacity=capacity,
    )
    return run_scenario(config)


def test_load_adaptation(benchmark):
    results = run_once(
        benchmark,
        lambda: {
            "unlimited": run_with_capacity(None),
            "capacity=10/epoch": run_with_capacity(10),
            "capacity=3/epoch": run_with_capacity(3),
        },
    )

    rows = [
        (
            name,
            f"{r.steady_state_availability(3):.3f}",
            f"{r.steady_state_replicas(3):.2f}",
        )
        for name, r in results.items()
    ]
    print_table(
        "Sec. 5.2.5 — overloaded mirrors and load spreading",
        ("service capacity", "availability", "replicas"),
        rows,
    )

    unlimited = results["unlimited"]
    tight = results["capacity=3/epoch"]
    # Rankings absorb the overload: availability stays within a few points
    # of the uncapped baseline ...
    assert (
        tight.steady_state_availability(3)
        > unlimited.steady_state_availability(3) - 0.08
    )
    # ... because the load is spread across additional mirrors.
    assert (
        tight.steady_state_replicas(3) > unlimited.steady_state_replicas(3) - 0.2
    )
