"""Guard: the sweep orchestrator is a thin wrapper, not a tax.

The contract of ``repro.runtime`` is that ``--jobs 1`` is the same work a
bare ``run_scenario`` loop does, plus spec expansion, task hashing, and
atomic artifact/manifest writes.  Those extras are milliseconds against
simulations that take seconds, so a serial sweep over the same tasks must
stay within 10 % of the bare loop's wall time.  A regression here means
per-task bookkeeping grew a hidden cost (e.g. re-parsing, double
serialization, sync fsync storms) that would multiply across the large
grids the orchestrator exists for.
"""

import tempfile
import time

from benchmarks.conftest import DEFAULT_SCALE
from repro.runtime import SweepSpec, run_sweep
from repro.sim.engine import run_scenario

DAYS = 2
SEEDS = (3, 4, 5)

#: Allowed overhead: 10 % relative plus a small absolute grace for
#: filesystem jitter on these deliberately short reference runs.
RELATIVE_BUDGET = 1.10
ABSOLUTE_GRACE_S = 0.2


def _spec() -> SweepSpec:
    return SweepSpec(
        name="overhead",
        base={"scale": DEFAULT_SCALE, "n_days": DAYS},
        seeds=list(SEEDS),
    )


def test_sweep_overhead_under_ten_percent():
    spec = _spec()
    tasks = spec.expand()

    # Bare reference: the exact same configs through run_scenario directly.
    start = time.perf_counter()
    for task in tasks:
        run_scenario(task.build_config())
    bare_s = time.perf_counter() - start

    # Orchestrated: same tasks, serial path, fresh run directory.
    with tempfile.TemporaryDirectory(prefix="soup-overhead-") as tmp:
        start = time.perf_counter()
        outcome = run_sweep(spec, tmp, jobs=1)
        sweep_s = time.perf_counter() - start
    assert outcome.complete, outcome.failed
    assert len(outcome.executed) == len(tasks)

    print(
        f"\nbare loop: {bare_s:.2f}s   sweep --jobs 1: {sweep_s:.2f}s   "
        f"overhead: {sweep_s / bare_s - 1:+.1%}"
    )
    assert sweep_s <= bare_s * RELATIVE_BUDGET + ABSOLUTE_GRACE_S, (
        f"orchestrator overhead too high: bare {bare_s:.2f}s vs "
        f"sweep {sweep_s:.2f}s"
    )
