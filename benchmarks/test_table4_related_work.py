"""Table 4: SOUP vs related work under their own assumptions.

Paper claims:

* Under SOUP's power-law assumption: ~99.5 % availability with ~6.5
  replicas.
* Under PeerSoN's online-time mix: SOUP reaches ~98.5 % with ~14 replicas
  is PeerSoN's own overhead; SOUP cuts the replica count by about a third
  (to ~6 in their table the columns read: PeerSoN <90-100 % with 6 —
  depends on p; SOUP ~98.5 % with 14→ reduced by one third) while giving
  *all* nodes close-to-uniform availability, unlike PeerSoN whose
  availability depends on each user's own online time.
* Under Safebook's uniform p = 0.3: SOUP ~100 % with ~4 replicas vs
  Safebook ~90 % with 13-24 friend replicas.
"""

import numpy as np
import pytest

from benchmarks.conftest import DEFAULT_SCALE, print_table, run_once
from repro.baselines.peerson import PeerSonModel
from repro.baselines.safebook import SafebookModel
from repro.graphs.datasets import generate_dataset
from repro.sim.engine import run_scenario
from repro.sim.scenario import OnlineDistribution, ScenarioConfig, sample_distribution

DAYS = 14


def run_soup(distribution: OnlineDistribution):
    config = ScenarioConfig(
        dataset="facebook",
        scale=DEFAULT_SCALE,
        n_days=DAYS,
        seed=5,
        online_distribution=distribution,
    )
    return run_scenario(config)


def run_comparison():
    rng = np.random.default_rng(5)
    graph = generate_dataset("facebook", scale=DEFAULT_SCALE, seed=5)
    n = graph.number_of_nodes()

    soup_powerlaw = run_soup(OnlineDistribution.POWER_LAW)
    soup_peerson = run_soup(OnlineDistribution.PEERSON)
    soup_uniform = run_soup(OnlineDistribution.UNIFORM_03)

    peerson_p = sample_distribution(OnlineDistribution.PEERSON, n, rng)
    peerson = PeerSonModel(replica_count=6).summary(peerson_p, seed=5, n_epochs=24 * 7)

    uniform_p = np.full(n, 0.3)
    safebook = SafebookModel(max_mirrors=24).summary(
        graph, uniform_p, seed=5, n_epochs=24 * 7
    )
    return {
        "soup_powerlaw": soup_powerlaw,
        "soup_peerson": soup_peerson,
        "soup_uniform": soup_uniform,
        "peerson": peerson,
        "safebook": safebook,
    }


def test_table4(benchmark):
    outcome = run_once(benchmark, run_comparison)

    soup_pl = outcome["soup_powerlaw"]
    soup_ps = outcome["soup_peerson"]
    soup_u = outcome["soup_uniform"]
    peerson = outcome["peerson"]
    safebook = outcome["safebook"]

    rows = [
        (
            "Power-law",
            "SOUP",
            f"{soup_pl.steady_state_availability(3):.3f}",
            f"{soup_pl.steady_state_replicas(3):.1f}",
        ),
        (
            "PeerSoN mix",
            "SOUP",
            f"{soup_ps.steady_state_availability(3):.3f}",
            f"{soup_ps.steady_state_replicas(3):.1f}",
        ),
        (
            "PeerSoN mix",
            "PeerSoN",
            f"{peerson['availability']:.3f} "
            f"(per-node {peerson['availability_min']:.2f}-{peerson['availability_max']:.2f})",
            f"{peerson['replicas']:.1f}",
        ),
        (
            "Uniform p=0.3",
            "SOUP",
            f"{soup_u.steady_state_availability(3):.3f}",
            f"{soup_u.steady_state_replicas(3):.1f}",
        ),
        (
            "Uniform p=0.3",
            "Safebook",
            f"{safebook['availability']:.3f}",
            f"{safebook['replicas']:.1f} (13-24 shells)",
        ),
    ]
    print_table(
        "Table 4 — SOUP vs related work",
        ("online-time assumption", "approach", "availability", "replicas"),
        rows,
    )

    # --- SOUP vs Safebook under uniform p = 0.3 -------------------------
    # SOUP beats Safebook's availability by a clear margin (paper: +8.5 %) ...
    assert soup_u.steady_state_availability(3) > safebook["availability"] + 0.04
    # ... with far fewer replicas than Safebook's upper shells.
    assert soup_u.steady_state_replicas(3) < safebook["replicas"]
    # Safebook lands in its published ~90 % band.
    assert 0.80 <= safebook["availability"] <= 0.97

    # --- SOUP vs PeerSoN under PeerSoN's favourable mix ------------------
    # PeerSoN's availability depends on each user's own online time: the
    # per-node spread is wide.
    assert peerson["availability_max"] - peerson["availability_min"] > 0.05
    # SOUP provides high availability for everybody under the same mix.
    assert soup_ps.steady_state_availability(3) > 0.96
    # And under favourable online times SOUP needs fewer mirrors than under
    # the power law (the paper reports close-to-lower-bound overhead here).
    assert soup_ps.steady_state_replicas(3) <= soup_pl.steady_state_replicas(3) + 0.5

    # --- SOUP's own assumption -------------------------------------------
    assert soup_pl.steady_state_availability(3) > 0.95
    assert soup_pl.steady_state_replicas(3) < 10
