"""Fig. 10: SOUP is resilient against a slander attack.

Paper claims: with m = 10/20/50 % of identities manipulating experience
sets (and recommendations to newcomers) at the maximum rate, availability
degrades gracefully — even at m = 0.5 it only drops to around 95 % — while
the replica overhead rises as nodes compensate for the poisoned rankings.
"""

import numpy as np
import pytest

from benchmarks.conftest import DEFAULT_SCALE, print_series, print_table, run_once
from repro.sim.engine import run_scenario
from repro.sim.scenario import ScenarioConfig

DAYS = 20
FRACTIONS = (0.0, 0.1, 0.2, 0.5)


def run_fraction(fraction: float):
    config = ScenarioConfig(
        dataset="facebook",
        scale=DEFAULT_SCALE,
        n_days=DAYS,
        seed=5,
        slander_fraction=fraction,
    )
    return run_scenario(config)


def test_fig10(benchmark):
    results = run_once(benchmark, lambda: {m: run_fraction(m) for m in FRACTIONS})

    rows = []
    for fraction, result in results.items():
        label = f"m={fraction:.1f}"
        print_series(f"Fig.10 availability ({label})", "per day", result.daily_availability())
        rows.append(
            (
                label,
                f"{result.steady_state_availability(skip_days=3):.3f}",
                f"{result.steady_state_replicas(skip_days=3):.2f}",
            )
        )
    print_table(
        "Fig. 10 — slander attack",
        ("attackers", "availability", "replicas"),
        rows,
    )

    clean = results[0.0].steady_state_availability(skip_days=3)
    heavy = results[0.5].steady_state_availability(skip_days=3)

    # The attack degrades availability gracefully: even with half of all
    # identities slandering, the drop stays within a few points (the paper
    # measures ~95 % absolute; we assert the same bounded-degradation shape).
    assert heavy > clean - 0.08
    assert heavy > 0.85

    # Degradation is monotone in the attacker fraction (within noise).
    availabilities = [
        results[m].steady_state_availability(skip_days=3) for m in FRACTIONS
    ]
    assert availabilities[0] >= availabilities[-1] - 0.01
